#include "bgp/decision.hpp"

namespace bgp {

const char* decision_step_name(DecisionStep step) {
  switch (step) {
    case DecisionStep::kLocalPref:
      return "local-pref";
    case DecisionStep::kPathLength:
      return "as-path-length";
    case DecisionStep::kMed:
      return "med";
    case DecisionStep::kEbgpOverIbgp:
      return "ebgp-over-ibgp";
    case DecisionStep::kIgpCost:
      return "igp-cost";
    case DecisionStep::kTieBreak:
      return "lowest-router-id";
    case DecisionStep::kEqual:
      return "equal";
  }
  return "?";
}

Comparison compare_views(const RouteView& a, const RouteView& b,
                         std::span<const std::uint32_t> sender_ids) {
  if (a.local_pref != b.local_pref) {
    return {a.local_pref > b.local_pref ? -1 : 1, DecisionStep::kLocalPref};
  }
  if (a.path_len != b.path_len) {
    return {a.path_len < b.path_len ? -1 : 1, DecisionStep::kPathLength};
  }
  if (a.med != b.med) {
    return {a.med < b.med ? -1 : 1, DecisionStep::kMed};
  }
  if (a.ibgp != b.ibgp) {
    return {a.ibgp ? 1 : -1, DecisionStep::kEbgpOverIbgp};
  }
  if (a.igp_cost != b.igp_cost) {
    return {a.igp_cost < b.igp_cost ? -1 : 1, DecisionStep::kIgpCost};
  }
  std::uint32_t ida = sender_ids[a.sender];
  std::uint32_t idb = sender_ids[b.sender];
  if (ida != idb) {
    return {ida < idb ? -1 : 1, DecisionStep::kTieBreak};
  }
  return {0, DecisionStep::kEqual};
}

Comparison compare_routes(const Route& a, const Route& b,
                          std::span<const std::uint32_t> sender_ids) {
  return compare_views(view_of(a), view_of(b), sender_ids);
}

int select_best(std::span<const Route> candidates,
                std::span<const std::uint32_t> sender_ids) {
  int best = -1;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (best < 0) {
      best = static_cast<int>(i);
      continue;
    }
    Comparison cmp = compare_routes(candidates[i],
                                    candidates[static_cast<std::size_t>(best)],
                                    sender_ids);
    if (cmp.order < 0) best = static_cast<int>(i);
  }
  return best;
}

}  // namespace bgp
