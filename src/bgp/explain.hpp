// Human-readable explanation of a quasi-router's route selection: every
// RIB-In candidate annotated with the decision step at which it was
// eliminated relative to the best route.  Powers the what-if example and
// debugging ("why did the model pick this path?").
#pragma once

#include <string>
#include <vector>

#include "bgp/engine.hpp"

namespace bgp {

struct RouteExplanation {
  struct Candidate {
    Route route;
    bool is_best = false;
    /// For non-best candidates: the decisive elimination step.
    DecisionStep lost_at = DecisionStep::kEqual;
  };
  nb::RouterId router;
  std::vector<Candidate> candidates;  // best first, then by elimination step

  std::string str(const Model& model) const;
};

/// Explains the selection at `router` for a finished simulation.
RouteExplanation explain_selection(const Model& model,
                                   const PrefixSimResult& sim,
                                   Model::Dense router);

}  // namespace bgp
