#include "bgp/driver.hpp"

#include <mutex>

namespace bgp {

std::vector<SimJob> jobs_for_all_ases(const Model& model) {
  std::vector<SimJob> jobs;
  for (nb::Asn asn : model.asns())
    jobs.push_back({Prefix::for_asn(asn), asn});
  return jobs;
}

void run_jobs(
    const Engine& engine, const std::vector<SimJob>& jobs, ThreadPool& pool,
    const std::function<void(std::size_t, PrefixSimResult&&)>& consume) {
  // Build the per-epoch simulation context once on the calling thread so
  // the workers start from a shared immutable snapshot instead of racing to
  // construct it behind the engine's context lock.
  engine.context();
  std::mutex consume_mutex;
  pool.parallel_for(jobs.size(), [&](std::size_t i) {
    PrefixSimResult result = engine.run(jobs[i].prefix, jobs[i].origin);
    std::lock_guard lock(consume_mutex);
    consume(i, std::move(result));
  });
}

}  // namespace bgp
