#include "bgp/threadpool.hpp"

#include <algorithm>
#include <stdexcept>

#include "netbase/sysinfo.hpp"

namespace bgp {

namespace {
// The pool whose batch the current thread is executing, if any; used to
// detect nested parallel_for calls that would deadlock.
thread_local const ThreadPool* tls_running_pool = nullptr;
// The executing thread's slot for parallel_for_worker: workers are
// 0..size()-1 (set once at thread start), the calling thread size()
// (set per batch in parallel_for, restored after for nested pools).
thread_local unsigned tls_worker_slot = 0;
}  // namespace

unsigned ThreadPool::resolve(unsigned threads) {
  // Delegates to the one shared rule (0 = hardware concurrency, clamped)
  // so pools, rdtool subcommands and benches cannot drift apart.
  return nb::resolve_threads(threads);
}

ThreadPool::ThreadPool(unsigned threads) {
  threads = resolve(threads);
  // With one thread we run inline; no workers needed.
  if (threads == 1) return;
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i)
    workers_.emplace_back([this, i] {
      tls_worker_slot = i;
      worker_loop();
    });
}

ThreadPool::~ThreadPool() {
  {
    nb::MutexLock lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  if (tls_running_pool == this) {
    throw std::logic_error(
        "nested ThreadPool::parallel_for on the same pool");
  }
  const ThreadPool* previous = tls_running_pool;
  const unsigned previous_slot = tls_worker_slot;
  tls_running_pool = this;
  tls_worker_slot = static_cast<unsigned>(workers_.size());
  struct Restore {
    const ThreadPool* previous;
    unsigned previous_slot;
    ~Restore() {
      tls_running_pool = previous;
      tls_worker_slot = previous_slot;
    }
  } restore{previous, previous_slot};

  if (workers_.empty()) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }
  nb::MutexLock submit(submit_mutex_);
  {
    nb::MutexLock lock(mutex_);
    batch_ = Batch{count, 0, 0, &body, nullptr};
    has_batch_ = true;
  }
  work_cv_.notify_all();
  // The calling thread participates too.
  work_through_batch();
  std::exception_ptr error;
  {
    nb::MutexLock lock(mutex_);
    // Explicit wait loop: the predicate reads mutex_-guarded state, which
    // the thread-safety analysis can follow here but not inside a lambda
    // passed to condition_variable_any::wait.
    while (batch_.next < batch_.count || batch_.in_flight != 0)
      done_cv_.wait(lock);
    has_batch_ = false;
    error = std::move(batch_.error);
    batch_ = Batch{};
  }
  if (error) std::rethrow_exception(error);
}

void ThreadPool::parallel_for_worker(
    std::size_t count,
    const std::function<void(unsigned worker, std::size_t i)>& body) {
  parallel_for(count,
               [&body](std::size_t i) { body(tls_worker_slot, i); });
}

void ThreadPool::work_through_batch() {
  for (;;) {
    std::size_t index;
    const std::function<void(std::size_t)>* body;
    {
      nb::MutexLock lock(mutex_);
      if (!has_batch_ || batch_.next >= batch_.count) return;
      index = batch_.next++;
      ++batch_.in_flight;
      body = batch_.body;
    }
    std::exception_ptr error;
    try {
      (*body)(index);
    } catch (...) {
      error = std::current_exception();
    }
    nb::MutexLock lock(mutex_);
    --batch_.in_flight;
    if (error) {
      if (!batch_.error) batch_.error = std::move(error);
      batch_.next = batch_.count;  // abandon unclaimed indices
    }
    if (batch_.next >= batch_.count && batch_.in_flight == 0)
      done_cv_.notify_all();
  }
}

void ThreadPool::worker_loop() {
  tls_running_pool = this;
  for (;;) {
    {
      nb::MutexLock lock(mutex_);
      while (!stop_ && !(has_batch_ && batch_.next < batch_.count))
        work_cv_.wait(lock);
      if (stop_) return;
    }
    work_through_batch();
  }
}

}  // namespace bgp
