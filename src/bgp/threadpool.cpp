#include "bgp/threadpool.hpp"

#include <algorithm>

namespace bgp {

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0)
    threads = std::max(1u, std::thread::hardware_concurrency());
  // With one thread we run inline; no workers needed.
  if (threads == 1) return;
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  if (workers_.empty()) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }
  {
    std::lock_guard lock(mutex_);
    batch_ = Batch{count, 0, 0, &body};
    has_batch_ = true;
  }
  work_cv_.notify_all();
  // The calling thread participates too.
  for (;;) {
    std::size_t index;
    {
      std::lock_guard lock(mutex_);
      if (!has_batch_ || batch_.next >= batch_.count) break;
      index = batch_.next++;
    }
    body(index);
    std::lock_guard lock(mutex_);
    ++batch_.done;
    if (batch_.done == batch_.count) done_cv_.notify_all();
  }
  std::unique_lock lock(mutex_);
  done_cv_.wait(lock, [this] { return batch_.done == batch_.count; });
  has_batch_ = false;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::size_t index;
    const std::function<void(std::size_t)>* body;
    {
      std::unique_lock lock(mutex_);
      work_cv_.wait(lock, [this] {
        return stop_ || (has_batch_ && batch_.next < batch_.count);
      });
      if (stop_) return;
      index = batch_.next++;
      body = batch_.body;
    }
    (*body)(index);
    std::lock_guard lock(mutex_);
    ++batch_.done;
    if (batch_.done == batch_.count) done_cv_.notify_all();
  }
}

}  // namespace bgp
