// Reusable struct-of-arrays simulation storage (DESIGN.md section 13).
//
// One SimMemory instance holds every mutable byte a single Engine::run /
// run_compacted needs: the per-slot Adj-RIB-In packed into dense column
// arrays, AS-path hops in one bump-allocated arena, the FIFO dirty ring
// and the sender->slot hash indices.  Buffers persist across runs -- a
// refinement sweep hands each ThreadPool worker one instance and every
// run after the first allocates (amortized) nothing, replacing the
// per-message vector<Route> heap traffic of the old array-of-structs RIB.
//
// Layout: slot s owns entry rows [region_off_[s], region_off_[s] +
// live_[s]) of the column arrays.  Region capacity is fan-in + 1, a
// static bound on distinct senders (sessions are symmetric, so inbound
// degree equals the peer-list length; +1 covers self-origination), and
// regions never move, so the RIB keeps the AoS engine's exact insertion
// order: push appends at the region end, erase shifts the region tail
// left one row -- byte-identical rib_in contents and best indices fall
// out by construction.  Paths live in `hops_` as (offset, len, capacity)
// triples; a replacement path that outgrows its capacity gets a fresh
// arena region and the old one is leaked until the next begin() (bounded
// by one run's path churn, reclaimed wholesale by the bump reset).
//
// Invalidation rule for callers: any operation that appends hops (push,
// set_path, assign_path_from) may reallocate the arena, so never hold a
// span from path_at() across one -- re-derive it from the entry row,
// whose (offset, len) survive reallocation.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "bgp/decision.hpp"
#include "bgp/route.hpp"
#include "netbase/check.hpp"

namespace bgp {

class SimMemory {
 public:
  /// Sender -> slot lookups switch from a linear column scan to a hash map
  /// at this inbound fan-in (same threshold as the AoS engine: low-degree
  /// routers scan faster than they hash).
  static constexpr std::uint32_t kIndexedFanIn = 32;

  /// The non-path attributes of one RIB row (paths are passed separately
  /// so the bump arena controls their storage).
  struct Attrs {
    std::uint32_t sender = 0;
    std::uint32_t local_pref = kDefaultLocalPref;
    std::uint32_t med = 0;
    std::uint32_t igp_cost = 0;
    bool ibgp = false;
  };

  /// Starts a run over `slots` RIB slots.  Callers declare every slot's
  /// fan-in (set_fan_in) and then call finish_setup() before any RIB op.
  void begin(std::size_t slots) {
    slots_ = slots;
    region_off_.assign(slots + 1, 0);
    indexed_.assign(slots, 0);
    any_indexed_ = false;
  }

  /// `capacity_fan_in` bounds the distinct senders that can ever hold a RIB
  /// row in this slot; `index_fan_in` is the (possibly larger) message
  /// fan-in the hash-index heuristic looks at -- run_compacted counts
  /// phantom peers there, which charge messages but never install rows.
  void set_fan_in(std::uint32_t slot, std::uint32_t capacity_fan_in,
                  std::uint32_t index_fan_in) {
    region_off_[slot + 1] = capacity_fan_in + 1;
    if (index_fan_in >= kIndexedFanIn) {
      indexed_[slot] = 1;
      any_indexed_ = true;
    }
  }
  void set_fan_in(std::uint32_t slot, std::uint32_t fan_in) {
    set_fan_in(slot, fan_in, fan_in);
  }

  void finish_setup() {
    for (std::size_t s = 0; s < slots_; ++s) region_off_[s + 1] += region_off_[s];
    const std::size_t rows = region_off_[slots_];
    sender_.resize(rows);
    local_pref_.resize(rows);
    med_.resize(rows);
    igp_cost_.resize(rows);
    ibgp_.resize(rows);
    path_off_.resize(rows);
    path_len_.resize(rows);
    path_cap_.resize(rows);
    live_.assign(slots_, 0);
    best_.assign(slots_, -1);
    best_external_.assign(slots_, -1);
    queued_.assign(slots_, 0);
    ring_.resize(slots_);
    ring_head_ = 0;
    ring_count_ = 0;
    hops_used_ = 0;
    if (any_indexed_) {
      slot_index_.resize(slots_);
      for (std::size_t s = 0; s < slots_; ++s) {
        if (indexed_[s] && !slot_index_[s].empty()) slot_index_[s].clear();
      }
    }
  }

  // --- FIFO dirty ring (capacity == slots: the queued flag admits each
  // --- slot at most once, exactly like the AoS deque + flags pair).
  bool queue_empty() const { return ring_count_ == 0; }
  void enqueue(std::uint32_t slot) {
    if (queued_[slot]) return;
    queued_[slot] = 1;
    std::size_t tail = ring_head_ + ring_count_;
    if (tail >= ring_.size()) tail -= ring_.size();
    ring_[tail] = slot;
    ++ring_count_;
  }
  std::uint32_t pop_front() {
    const std::uint32_t slot = ring_[ring_head_];
    ring_head_ = ring_head_ + 1 == ring_.size() ? 0 : ring_head_ + 1;
    --ring_count_;
    queued_[slot] = 0;
    return slot;
  }

  // --- RIB rows.
  std::uint32_t begin_of(std::uint32_t slot) const { return region_off_[slot]; }
  std::uint32_t live(std::uint32_t slot) const { return live_[slot]; }
  /// Absolute row of a slot-relative index.
  std::uint32_t row(std::uint32_t slot, std::uint32_t rel) const {
    return region_off_[slot] + rel;
  }

  int best(std::uint32_t slot) const { return best_[slot]; }
  int best_external(std::uint32_t slot) const { return best_external_[slot]; }
  void set_best(std::uint32_t slot, int rel) { best_[slot] = rel; }
  void set_best_external(std::uint32_t slot, int rel) {
    best_external_[slot] = rel;
  }

  std::uint32_t sender_at(std::uint32_t r) const { return sender_[r]; }
  bool ibgp_at(std::uint32_t r) const { return ibgp_[r] != 0; }
  RouteView view_at(std::uint32_t r) const {
    return RouteView{sender_[r],   local_pref_[r], med_[r],
                     igp_cost_[r], path_len_[r],   ibgp_[r] != 0};
  }
  std::span<const Asn> path_at(std::uint32_t r) const {
    return {hops_.data() + path_off_[r], path_len_[r]};
  }
  bool path_equals(std::uint32_t r, std::span<const Asn> p) const {
    return path_len_[r] == p.size() &&
           std::equal(p.begin(), p.end(), hops_.begin() + path_off_[r]);
  }
  bool paths_equal(std::uint32_t a, std::uint32_t b) const {
    return path_equals(a, path_at(b));
  }

  /// Slot-relative index of `sender`'s row, -1 if absent.
  int find(std::uint32_t slot, std::uint32_t sender) const {
    if (indexed_[slot]) {
      const auto& map = slot_index_[slot];
      const auto it = map.find(sender);
      return it == map.end() ? -1 : static_cast<int>(it->second);
    }
    const std::uint32_t base = region_off_[slot];
    for (std::uint32_t i = 0; i < live_[slot]; ++i) {
      if (sender_[base + i] == sender) return static_cast<int>(i);
    }
    return -1;
  }

  void set_attrs(std::uint32_t r, const Attrs& a) {
    sender_[r] = a.sender;
    local_pref_[r] = a.local_pref;
    med_[r] = a.med;
    igp_cost_[r] = a.igp_cost;
    ibgp_[r] = a.ibgp ? 1 : 0;
  }

  /// Replaces row r's path.  `p` must NOT alias the hop arena (use
  /// assign_path_from for arena-to-arena copies).
  void set_path(std::uint32_t r, std::span<const Asn> p) {
    const auto len = static_cast<std::uint32_t>(p.size());
    if (len > path_cap_[r]) {
      path_off_[r] = alloc_hops(len);
      path_cap_[r] = len;
    }
    path_len_[r] = len;
    std::copy(p.begin(), p.end(), hops_.begin() + path_off_[r]);
  }

  /// Arena-to-arena path copy, safe under reallocation: the destination is
  /// (re)allocated first and both sides are re-derived from offsets after.
  void assign_path_from(std::uint32_t dst, std::uint32_t src) {
    const std::uint32_t len = path_len_[src];
    if (len > path_cap_[dst]) {
      path_off_[dst] = alloc_hops(len);
      path_cap_[dst] = len;
    }
    path_len_[dst] = len;
    std::copy_n(hops_.begin() + path_off_[src], len,
                hops_.begin() + path_off_[dst]);
  }

  /// Appends a row to `slot` (preserving insertion order); returns its
  /// absolute row.  `p` must not alias the arena.
  std::uint32_t push(std::uint32_t slot, const Attrs& a,
                     std::span<const Asn> p) {
    const std::uint32_t r = push_row(slot, a, static_cast<std::uint32_t>(p.size()));
    std::copy(p.begin(), p.end(), hops_.begin() + path_off_[r]);
    return r;
  }
  /// push() whose path is copied from an existing arena row.
  std::uint32_t push_from(std::uint32_t slot, const Attrs& a,
                          std::uint32_t src) {
    const std::uint32_t r = push_row(slot, a, path_len_[src]);
    std::copy_n(hops_.begin() + path_off_[src], path_len_[src],
                hops_.begin() + path_off_[r]);
    return r;
  }

  /// Total bytes reserved across every buffer.  Capacities never shrink --
  /// begin()/finish_setup() only resize upward and the hop arena doubles --
  /// so this is a monotone high-water mark of the instance's footprint,
  /// readable between runs at zero hot-path cost (the sweep profiler
  /// samples it per shard).
  std::size_t footprint_bytes() const {
    return (region_off_.capacity() + sender_.capacity() +
            local_pref_.capacity() + med_.capacity() + igp_cost_.capacity() +
            path_off_.capacity() + path_len_.capacity() + path_cap_.capacity() +
            ring_.capacity()) *
               sizeof(std::uint32_t) +
           (live_.capacity()) * sizeof(std::uint32_t) +
           (best_.capacity() + best_external_.capacity()) * sizeof(int) +
           (ibgp_.capacity() + queued_.capacity() + indexed_.capacity()) *
               sizeof(char) +
           hops_.capacity() * sizeof(Asn);
  }

  /// Erases the slot-relative row `rel`, shifting the region tail left one
  /// place and repairing the hash index -- the AoS vector::erase semantics.
  void erase(std::uint32_t slot, int rel) {
    const std::uint32_t base = region_off_[slot];
    const std::uint32_t erased_sender =
        sender_[base + static_cast<std::uint32_t>(rel)];
    const std::uint32_t last = live_[slot] - 1;
    for (auto i = static_cast<std::uint32_t>(rel); i < last; ++i) {
      const std::uint32_t to = base + i;
      const std::uint32_t from = to + 1;
      sender_[to] = sender_[from];
      local_pref_[to] = local_pref_[from];
      med_[to] = med_[from];
      igp_cost_[to] = igp_cost_[from];
      ibgp_[to] = ibgp_[from];
      path_off_[to] = path_off_[from];
      path_len_[to] = path_len_[from];
      path_cap_[to] = path_cap_[from];
    }
    live_[slot] = last;
    if (indexed_[slot]) {
      auto& map = slot_index_[slot];
      map.erase(erased_sender);
      for (auto& [key, value] : map) {
        if (value > static_cast<std::uint32_t>(rel)) --value;
      }
    }
  }

 private:
  std::uint32_t push_row(std::uint32_t slot, const Attrs& a,
                         std::uint32_t path_len) {
    RD_CHECK(region_off_[slot] + live_[slot] < region_off_[slot + 1],
             "SimMemory::push: slot over its fan-in capacity");
    const std::uint32_t r = region_off_[slot] + live_[slot];
    if (indexed_[slot]) slot_index_[slot][a.sender] = live_[slot];
    ++live_[slot];
    set_attrs(r, a);
    path_off_[r] = alloc_hops(path_len);
    path_len_[r] = path_len;
    path_cap_[r] = path_len;
    return r;
  }

  std::uint32_t alloc_hops(std::uint32_t len) {
    const std::size_t off = hops_used_;
    if (off + len > hops_.size()) {
      hops_.resize(std::max(hops_.size() * 2, off + len));
    }
    hops_used_ = off + len;
    return static_cast<std::uint32_t>(off);
  }

  std::size_t slots_ = 0;
  /// region_off_[s] .. region_off_[s+1]: slot s's (fixed-capacity) rows.
  std::vector<std::uint32_t> region_off_;
  std::vector<std::uint32_t> live_;
  std::vector<int> best_;
  std::vector<int> best_external_;

  // Entry columns, indexed by absolute row.
  std::vector<std::uint32_t> sender_;
  std::vector<std::uint32_t> local_pref_;
  std::vector<std::uint32_t> med_;
  std::vector<std::uint32_t> igp_cost_;
  std::vector<char> ibgp_;
  std::vector<std::uint32_t> path_off_;
  std::vector<std::uint32_t> path_len_;
  std::vector<std::uint32_t> path_cap_;

  /// Bump arena for AS-path hops; reset (not shrunk) every begin().
  std::vector<Asn> hops_;
  std::size_t hops_used_ = 0;

  std::vector<std::uint32_t> ring_;
  std::size_t ring_head_ = 0;
  std::size_t ring_count_ = 0;
  std::vector<char> queued_;

  std::vector<char> indexed_;
  bool any_indexed_ = false;
  std::vector<std::unordered_map<std::uint32_t, std::uint32_t>> slot_index_;
};

}  // namespace bgp
