#include "bgp/route.hpp"

#include <algorithm>

namespace bgp {

std::string Route::str() const {
  std::string out = "path=[";
  for (std::size_t i = 0; i < path.size(); ++i) {
    if (i > 0) out.push_back(' ');
    out += std::to_string(path[i]);
  }
  out += "] lp=" + std::to_string(local_pref) + " med=" + std::to_string(med) +
         " igp=" + std::to_string(igp_cost) +
         " from=" + std::to_string(sender);
  return out;
}

bool path_contains(std::span<const Asn> path, Asn asn) {
  return std::find(path.begin(), path.end(), asn) != path.end();
}

}  // namespace bgp
