// Steady-state, per-prefix BGP route propagation over a quasi-router model --
// the functional equivalent of C-BGP as the paper uses it (Section 4.1):
// "C-BGP only computes the steady-state choice of the BGP routers after the
// exchange of the BGP messages has converged", supporting multiple routers
// per AS, eBGP sessions, route filters and policies.
//
// The engine runs one prefix at a time (route decisions are independent per
// prefix), which is also how the paper's refinement loop consumes it.
//
// Mechanics: the origin AS's routers originate the prefix; a FIFO queue of
// "dirty" routers propagates best-route changes over sessions.  Export
// applies (a) the valley-free relationship rule when relationship policies
// are enabled (Section 3.3 baseline / ground truth) and (b) per-prefix
// deny-below-length filters (refinement).  Import applies receiver-side
// AS-loop detection, local-pref (relationship class or per-prefix override)
// and the per-prefix MED ranking.  Determinism: peers are visited in
// router-id order and the queue is FIFO, so results are reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <vector>

#include "bgp/decision.hpp"
#include "bgp/route.hpp"
#include "netbase/ids.hpp"
#include "netbase/ip.hpp"
#include "topology/model.hpp"

namespace bgp {

using nb::Prefix;
using topo::Model;

struct EngineOptions {
  /// Apply relationship-based local-pref and valley-free export rules
  /// (Section 3.3 baseline and the ground-truth network).
  bool use_relationship_policies = false;
  /// Apply per-session IGP costs in the decision process (hot-potato step;
  /// used by the ground truth to create intra-AS route diversity).
  bool use_igp_cost = false;
  /// Connect the routers of each AS with an implicit full iBGP mesh: every
  /// router shares its best EXTERNAL route with its AS-mates (no
  /// re-advertisement of iBGP-learned routes), and the decision process
  /// prefers eBGP over iBGP.  This is the alternative the paper REJECTED in
  /// Section 4.6 ("extremely difficult to control route selection");
  /// bench_ibgp_mesh reproduces why.
  bool use_ibgp_mesh = false;

  std::uint32_t lp_customer = 130;
  std::uint32_t lp_peer = 100;
  std::uint32_t lp_provider = 80;
  std::uint32_t lp_unknown = 100;

  /// Message-processing cap = factor * max(#sessions, 1); exceeding it marks
  /// the run non-converged (divergence guard; see paper Section 4.6 on why
  /// local-pref games can diverge -- our policies cannot, but the guard stays).
  std::uint64_t message_cap_factor = 512;
};

/// Per-router outcome of a prefix simulation.
struct RouterState {
  /// Adj-RIB-In after import processing; at most one entry per announcing
  /// router.  Includes the self-originated route at origin routers and,
  /// in ibgp-mesh mode, one iBGP entry per AS-mate.
  std::vector<Route> rib_in;
  /// Index of the best route in rib_in, -1 if none.
  int best = -1;
  /// Index of the best non-iBGP route (== best unless ibgp-mesh mode).
  int best_external = -1;

  const Route* best_route() const {
    return best < 0 ? nullptr : &rib_in[static_cast<std::size_t>(best)];
  }
  const Route* external_route() const {
    return best_external < 0
               ? nullptr
               : &rib_in[static_cast<std::size_t>(best_external)];
  }
};

/// Compacted per-prefix simulation view (Engine::build_view): the members
/// of a static working set with their in-set adjacency flattened, and the
/// per-edge import attributes the agnostic engine recomputes per message
/// (export filter threshold, local-pref override, MED ranking) resolved
/// once.  run_compacted iterates this instead of the full model; see
/// DESIGN.md section 12 for the byte-identity argument.
struct PrefixView {
  static constexpr std::uint32_t kNoCompact = 0xffffffffu;

  std::uint64_t epoch = 0;  // Model::generation() the view was built from
  Prefix prefix;
  nb::Asn origin = nb::kInvalidAsn;
  std::vector<Model::Dense> members;    // compact index -> dense, ascending
  std::vector<std::uint32_t> compact_of;  // dense -> compact or kNoCompact
  std::vector<nb::Asn> member_asn;      // compact index -> owning AS

  /// One in-set directed session with its import attributes pre-resolved
  /// for this prefix (receiver side, routes from the sender's AS).
  struct Edge {
    std::uint32_t to = 0;              // compact receiver index
    std::uint32_t deny_below_len = 0;  // 0: no filter; kDenyAll drops all
    std::uint32_t local_pref = kDefaultLocalPref;
    std::uint32_t med = topo::kDefaultMed;
  };
  /// edge_offset[c] .. edge_offset[c+1] delimit member c's in-set edges in
  /// `edges`, preserving Model::peers order restricted to members.
  std::vector<std::uint32_t> edge_offset;
  std::vector<Edge> edges;
  /// Out-of-set peers per member.  The full run charges one message per
  /// peer visited -- including peers whose import provably fails -- and the
  /// divergence guard reads that total, so the compacted run adds these
  /// counts at each activation to keep the message totals identical.
  std::vector<std::uint32_t> phantom;
  /// Every router is a member: compaction degenerates to the specialized
  /// inner loop and storage slots equal dense indices.
  bool identity = false;
};

struct PrefixSimResult {
  Prefix prefix;
  nb::Asn origin = nb::kInvalidAsn;
  /// Per-router outcomes.  Without `view` (Engine::run) this is indexed by
  /// dense router index; with a non-identity `view` (run_compacted) it is
  /// indexed by compact working-set index -- use state()/full_index() to
  /// stay dense-agnostic.
  std::vector<RouterState> routers;
  /// The compacted view this result was simulated over; null for full runs.
  std::shared_ptr<const PrefixView> view;
  bool converged = true;
  std::uint64_t messages = 0;
  /// Router wake-ups processed (always filled, with or without SimCounters):
  /// together with `messages` and `message_cap` this makes a divergence-
  /// guard trip a structured outcome callers can report, not a silent
  /// partial RIB (core/refine emits R701, check_convergence C401).
  std::uint64_t activations = 0;
  /// The divergence-guard threshold this run used
  /// (EngineOptions::message_cap_factor x max(#sessions, 1)).
  std::uint64_t message_cap = 0;

  /// Number of dense router indices state() accepts -- the model's router
  /// count at run time, with or without compaction.
  std::size_t dense_size() const {
    return view == nullptr ? routers.size() : view->compact_of.size();
  }
  /// True when `r`'s state was simulated (always, for full runs).  Routers
  /// outside a compacted view's working set provably end every full run
  /// with the default-empty state, which state() returns for them.
  bool covered(Model::Dense r) const {
    return view == nullptr || view->identity ||
           view->compact_of[r] != PrefixView::kNoCompact;
  }
  /// Dense router index described by storage slot `routers[slot]`.
  Model::Dense full_index(std::size_t slot) const {
    return view == nullptr || view->identity
               ? static_cast<Model::Dense>(slot)
               : view->members[slot];
  }
  const RouterState& state(Model::Dense r) const;
};

/// Optional hot-loop instrumentation for the obs layer, filled by run()
/// when a non-null pointer is passed.  Pure observation: the counts are
/// accumulated in locals either way (a handful of register increments per
/// message) and only stored through the pointer at the end, so passing or
/// omitting the struct never changes routing decisions, message order or
/// the resulting RIBs.
struct SimCounters {
  std::uint64_t messages = 0;     // == PrefixSimResult::messages
  /// Queue pops, i.e. router wake-ups; activations / routers reached is
  /// the mean number of convergence rounds a router needed.
  std::uint64_t activations = 0;
  std::uint64_t rib_inserts = 0;       // Adj-RIB-In entries created
  std::uint64_t rib_replacements = 0;  // entries updated in place
  std::uint64_t withdrawals = 0;       // entries erased
  /// Reselections that changed the (external) best and forced
  /// re-advertisement -- the engine's churn measure.
  std::uint64_t selection_changes = 0;

  /// Adj-RIB-In entries alive at convergence (inserts minus withdrawals).
  std::uint64_t rib_entries() const { return rib_inserts - withdrawals; }
};

/// Maps dense index -> router-id value for tie-breaking and reporting.
std::vector<std::uint32_t> dense_ids(const Model& model);

/// Reusable struct-of-arrays run storage (sim_memory.hpp).
class SimMemory;

/// Model-derived state every run() against the same model version shares:
/// dense router ids, per-router AS numbers and the per-router peer lists
/// flattened into one contiguous span array.  Built once per model epoch
/// (Model::generation()) instead of per run() call, and immutable once
/// published, so concurrent simulations can share a single instance.
struct SimContext {
  std::uint64_t epoch = 0;
  std::vector<std::uint32_t> ids;  // dense index -> router-id value
  std::vector<nb::Asn> asn_of;     // dense index -> owning AS
  /// peer_offset[r] .. peer_offset[r+1] delimit r's peers in peer_flat,
  /// ascending by RouterId (same order as Model::peers).
  std::vector<std::uint32_t> peer_offset;
  std::vector<Model::Dense> peer_flat;

  std::span<const Model::Dense> peers(Model::Dense r) const {
    return {peer_flat.data() + peer_offset[r],
            peer_offset[r + 1] - peer_offset[r]};
  }
};

class Engine {
 public:
  explicit Engine(const Model& model, EngineOptions options = {});

  /// Simulates propagation of `prefix` originated by all routers of
  /// `origin`.  Re-reads the model on every call, so model mutations between
  /// calls (refinement) are picked up.  `counters`, when non-null, receives
  /// hot-loop instrumentation (see SimCounters); the result is bit-for-bit
  /// the same with or without it.  `activated`, when non-null, is resized
  /// to the router count and flags every dense index the run popped off the
  /// dirty queue -- the dynamic ground truth the static working set
  /// (analysis/workset.hpp) must over-approximate; pure observation, same
  /// contract as `counters`.
  PrefixSimResult run(const Prefix& prefix, nb::Asn origin,
                      SimCounters* counters = nullptr,
                      std::vector<char>* activated = nullptr) const;

  /// run() into caller-owned storage: `memory` supplies every per-run
  /// buffer (and keeps them for the next call -- a sweep reuses one
  /// instance per worker), `out` is overwritten with the result and its
  /// rib_in / path capacities are likewise recycled.  Bit-for-bit the
  /// same outcome as run() for any SimMemory history.
  void run_into(const Prefix& prefix, nb::Asn origin, SimMemory& memory,
                SimCounters* counters, std::vector<char>* activated,
                PrefixSimResult& out) const;

  /// Compiles `workset` (dense-indexed membership flags; routers outside it
  /// must be unable to ever import a route for the prefix, e.g. a working
  /// set from analysis::compute_working_set) into a compacted simulation
  /// view for the model's CURRENT generation.  Returns nullptr when the
  /// engine options rule out the specialized loop (relationship policies,
  /// IGP costs and the iBGP mesh make import attributes route-dependent, so
  /// they cannot be resolved per edge) -- callers fall back to run().
  std::shared_ptr<const PrefixView> build_view(
      const Prefix& prefix, nb::Asn origin,
      const std::vector<char>& workset) const;

  /// run() over a compacted view: identical RouterStates, message and
  /// activation totals and convergence flag for every member router (and
  /// non-members provably keep the default-empty state a full run also
  /// leaves them with), touching only working-set state and using the
  /// view's pre-resolved per-edge attributes instead of per-message policy
  /// lookups.  The view must come from build_view against the model's
  /// current generation.
  PrefixSimResult run_compacted(std::shared_ptr<const PrefixView> view,
                                SimCounters* counters = nullptr) const;

  /// run_compacted() into caller-owned storage; same contract as run_into.
  void run_compacted_into(std::shared_ptr<const PrefixView> view,
                          SimMemory& memory, SimCounters* counters,
                          PrefixSimResult& out) const;

  /// The simulation context for the model's CURRENT generation, (re)building
  /// it if the model mutated since the last call.  Thread-safe: concurrent
  /// run() calls against an unmutated model share one immutable context.
  /// (Mutating the model while a simulation is in flight was never legal;
  /// the epoch cache does not change that contract.)
  std::shared_ptr<const SimContext> context() const;

  /// One hop of propagation in isolation: the route `to` would install if
  /// `from` advertised `best` over their session right now, or nullopt when
  /// export rules, filters or loop detection drop it.  This is exactly the
  /// export+import path `run` uses; analysis::check_convergence replays it
  /// per session to prove a simulation result is a fixed point.
  std::optional<Route> propagate(const topo::PrefixPolicy* policy,
                                 Model::Dense from, Model::Dense to,
                                 const Route& best) const;

  const Model& model() const { return *model_; }
  const EngineOptions& options() const { return options_; }

 private:
  /// The single implementation behind propagate() and the run() hot loop:
  /// export gating (valley-free rule, filters), receiver-side loop
  /// detection, and import attribute rewrite, writing the resulting route
  /// into `out` (whose path buffer is REUSED across calls -- no per-message
  /// allocation once its capacity has grown).  The advertised best route
  /// enters as its AS-path alone (`best_path`, empty iff originated) --
  /// the decision process rewrites every other attribute on import, so
  /// the path is all the SoA hot loop needs to hand over.  Returns false
  /// when the route would be dropped, leaving `out` unspecified.
  bool propagate_into(const topo::PrefixPolicy* policy, Model::Dense from,
                      Model::Dense to, std::span<const Asn> best_path,
                      const SimContext& ctx, Route& out) const;

  const Model* model_;
  EngineOptions options_;
  mutable std::mutex context_mutex_;
  mutable std::shared_ptr<const SimContext> context_;
};

}  // namespace bgp
