// Multi-prefix simulation driver: runs one Engine simulation per prefix
// (optionally across a thread pool) and hands each result to a consumer.
// Results can be large (one RouterState per router), so they are consumed
// one at a time instead of being accumulated.
#pragma once

#include <functional>
#include <vector>

#include "bgp/engine.hpp"
#include "bgp/threadpool.hpp"

namespace bgp {

struct SimJob {
  Prefix prefix;
  nb::Asn origin = nb::kInvalidAsn;
};

/// One job per AS in the model, prefix = Prefix::for_asn(origin) -- the
/// paper's "originate one prefix per AS" setup (Section 3.3 / 4.1).
std::vector<SimJob> jobs_for_all_ases(const Model& model);

/// Runs every job; `consume(job_index, result)` is invoked exactly once per
/// job, serialized under an internal mutex (thread-safe consumers are not
/// required).  Order of invocation is unspecified when threads > 1.
void run_jobs(const Engine& engine, const std::vector<SimJob>& jobs,
              ThreadPool& pool,
              const std::function<void(std::size_t, PrefixSimResult&&)>& consume);

}  // namespace bgp
