// Minimal fixed-size thread pool for fanning independent per-prefix
// simulations across cores.  Tasks are indexed; `parallel_for` blocks until
// every index has been processed.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace bgp {

class ThreadPool {
 public:
  /// threads == 0 selects std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  /// Runs body(i) for every i in [0, count), distributing dynamically.
  /// body must be thread-safe.  Runs inline when the pool has one thread.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& body);

 private:
  struct Batch {
    std::size_t count = 0;
    std::size_t next = 0;
    std::size_t done = 0;
    const std::function<void(std::size_t)>* body = nullptr;
  };

  void worker_loop();

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  Batch batch_;
  bool has_batch_ = false;
  bool stop_ = false;
};

}  // namespace bgp
