// Minimal fixed-size thread pool for fanning independent per-prefix
// simulations across cores.  Tasks are indexed; `parallel_for` blocks until
// every index has been processed.
//
// Error handling: if a body throws, the first exception is captured, no
// further indices are handed out (already-claimed indices finish), and the
// exception is rethrown on the calling thread once the batch has drained.
// The pool stays usable for subsequent batches.
//
// Misuse handling: calling parallel_for from inside a body running on the
// same pool throws std::logic_error (it would deadlock the multi-threaded
// pool); concurrent parallel_for calls from distinct external threads are
// serialized.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "netbase/thread_annotations.hpp"

namespace bgp {

class ThreadPool {
 public:
  /// threads == 0 selects std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  /// The worker count `threads` resolves to (nb::resolve_threads: 0 ->
  /// hardware_concurrency, min 1, clamped to nb::kMaxResolvedThreads).
  /// Exposed so callers (CLI --threads, benchmarks, the serve daemon) can
  /// report the effective count without constructing a pool.
  static unsigned resolve(unsigned threads);

  /// Runs body(i) for every i in [0, count), distributing dynamically.
  /// body must be thread-safe.  Runs inline when the pool has one thread.
  /// Rethrows the first exception a body threw, after draining the batch.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& body);

  /// Number of distinct threads parallel_for can run bodies on: the workers
  /// plus the calling thread (1 for the inline single-thread pool).  Sizes
  /// per-worker state such as obs::ShardGroup.
  unsigned shard_count() const {
    return workers_.empty() ? 1 : static_cast<unsigned>(workers_.size()) + 1;
  }

  /// parallel_for that also hands the body the stable slot index of the
  /// executing thread (always < shard_count(); workers are 0..size()-1, the
  /// calling thread is size()).  A slot is owned by exactly one thread for
  /// the whole batch, so bodies may write slot-indexed state -- e.g. an
  /// obs::Shard -- without synchronization; the batch barrier orders those
  /// writes before anything the caller does after parallel_for_worker
  /// returns.
  void parallel_for_worker(
      std::size_t count,
      const std::function<void(unsigned worker, std::size_t i)>& body);

 private:
  struct Batch {
    std::size_t count = 0;
    std::size_t next = 0;       // first unclaimed index
    std::size_t in_flight = 0;  // claimed but not yet finished
    const std::function<void(std::size_t)>* body = nullptr;
    std::exception_ptr error;   // first exception thrown by a body
  };

  void worker_loop() RD_EXCLUDES(mutex_);
  /// Claims and runs batch indices until none remain (all claimed, or the
  /// batch was poisoned by an exception).
  void work_through_batch() RD_EXCLUDES(mutex_);

  std::vector<std::thread> workers_;
  nb::Mutex submit_mutex_;  // serializes external parallel_for callers
  nb::Mutex mutex_;
  /// _any variants: they wait on the annotated nb::MutexLock rather than
  /// std::unique_lock<std::mutex>.
  std::condition_variable_any work_cv_;
  std::condition_variable_any done_cv_;
  Batch batch_ RD_GUARDED_BY(mutex_);
  bool has_batch_ RD_GUARDED_BY(mutex_) = false;
  bool stop_ RD_GUARDED_BY(mutex_) = false;
};

}  // namespace bgp
