// A BGP route as stored in a quasi-router's Adj-RIB-In after import
// processing (paper Figure 1: input filter -> attribute rewrite -> RIB-In).
//
// The AS-path here does NOT include the storing router's own AS; it begins
// with the announcing neighbor's AS and ends at the origin.  A locally
// originated route has an empty path.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "netbase/ids.hpp"

namespace bgp {

using nb::Asn;

/// Default attribute values (import processing overrides them).
constexpr std::uint32_t kDefaultLocalPref = 100;

struct Route {
  /// Dense index of the announcing router (self for originated routes).
  std::uint32_t sender = 0;
  std::uint32_t local_pref = kDefaultLocalPref;
  std::uint32_t med = 100;
  std::uint32_t igp_cost = 0;
  /// True if learned over the (implicit, full-mesh) iBGP inside the AS --
  /// only produced when EngineOptions::use_ibgp_mesh is on.
  bool ibgp = false;
  std::vector<Asn> path;  // [announcing AS ... origin]; empty if originated

  bool originated() const { return path.empty(); }

  std::string str() const;
};

/// True if `path` visits `asn` (receiver-side loop detection).
bool path_contains(std::span<const Asn> path, Asn asn);

}  // namespace bgp
