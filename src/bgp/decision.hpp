// The BGP decision process (paper Figure 1 / Section 2), with the step that
// decided each comparison reported explicitly.  Step reporting powers:
//   * the "potential RIB-Out match" metric (lost ONLY at the final
//     lowest-router-id tie-break);
//   * the mismatch breakdown rows of Table 2 ("shorter AS-path exists",
//     "lowest neighbor ID").
//
// Order of elimination implemented (no iBGP in the model, so the
// eBGP-over-iBGP step is vacuous):
//   1. highest local-pref
//   2. shortest AS-path
//   3. lowest MED, ALWAYS compared across neighbor ASes (Section 4.6)
//   4. eBGP over iBGP (only in the ibgp-mesh experiment mode)
//   5. lowest IGP cost to the next hop (hot-potato; ground truth only)
//   6. lowest announcing-router id (the paper's "lowest neighbor IP address")
#pragma once

#include <cstdint>
#include <span>

#include "bgp/route.hpp"

namespace bgp {

enum class DecisionStep : std::uint8_t {
  kLocalPref,
  kPathLength,
  kMed,
  kEbgpOverIbgp,  // only with EngineOptions::use_ibgp_mesh
  kIgpCost,
  kTieBreak,
  kEqual,  // identical on every criterion (same sender announcing twice)
};

/// Number of DecisionStep values (array sizing).
constexpr std::size_t kNumDecisionSteps = 7;

const char* decision_step_name(DecisionStep step);

struct Comparison {
  int order = 0;  // <0: a preferred, >0: b preferred, 0: equal
  DecisionStep step = DecisionStep::kEqual;
};

/// The decision-relevant attributes of a stored route.  Every step of the
/// decision process reads scalars only -- path CONTENT never participates,
/// just its length -- so this view fully determines compare_routes and lets
/// the struct-of-arrays RIB (bgp::SimMemory) compare entries without
/// materializing Route objects.
struct RouteView {
  std::uint32_t sender = 0;
  std::uint32_t local_pref = 0;
  std::uint32_t med = 0;
  std::uint32_t igp_cost = 0;
  std::uint32_t path_len = 0;
  bool ibgp = false;
};

inline RouteView view_of(const Route& route) {
  return RouteView{route.sender, route.local_pref, route.med, route.igp_cost,
                   static_cast<std::uint32_t>(route.path.size()), route.ibgp};
}

/// Compares two candidate routes; negative order means `a` wins.
/// `sender_ids[dense]` is the router-id value of a dense router index, so the
/// final tie-break uses the paper's addressing (ASN<<16 | index).
Comparison compare_views(const RouteView& a, const RouteView& b,
                         std::span<const std::uint32_t> sender_ids);
Comparison compare_routes(const Route& a, const Route& b,
                          std::span<const std::uint32_t> sender_ids);

/// Index of the best route in `candidates`, -1 if empty.
int select_best(std::span<const Route> candidates,
                std::span<const std::uint32_t> sender_ids);

}  // namespace bgp
