#include "bgp/explain.hpp"

#include <algorithm>

namespace bgp {

RouteExplanation explain_selection(const Model& model,
                                   const PrefixSimResult& sim,
                                   Model::Dense router) {
  RouteExplanation explanation;
  explanation.router = model.router_id(router);
  const RouterState& state = sim.routers[router];
  const Route* best = state.best_route();
  if (best == nullptr) return explanation;

  const std::vector<std::uint32_t> ids = dense_ids(model);
  for (const Route& route : state.rib_in) {
    RouteExplanation::Candidate candidate;
    candidate.route = route;
    if (&route == best) {
      candidate.is_best = true;
    } else {
      candidate.lost_at = compare_routes(route, *best, ids).step;
    }
    explanation.candidates.push_back(std::move(candidate));
  }
  std::stable_sort(explanation.candidates.begin(),
                   explanation.candidates.end(),
                   [](const RouteExplanation::Candidate& a,
                      const RouteExplanation::Candidate& b) {
                     if (a.is_best != b.is_best) return a.is_best;
                     return static_cast<int>(a.lost_at) >
                            static_cast<int>(b.lost_at);
                   });
  return explanation;
}

std::string RouteExplanation::str(const Model& model) const {
  std::string out = "router " + router.str() + ":\n";
  if (candidates.empty()) return out + "  (no routes)\n";
  for (const Candidate& candidate : candidates) {
    out += candidate.is_best
               ? "  BEST   "
               : "  lost(" + std::string(decision_step_name(candidate.lost_at)) +
                     ") ";
    out += candidate.route.str();
    out += " via " + model.router_id(candidate.route.sender).str();
    out += "\n";
  }
  return out;
}

}  // namespace bgp
