// Strong identifier types shared across the library.
//
// The paper (Section 4.5) assigns each quasi-router an IP address whose high
// 16 bits are the AS number and whose low bits are a per-AS unique index; the
// address doubles as the BGP router-id used by the final tie-break of the
// decision process.  RouterId encodes exactly that scheme.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

namespace nb {

/// Autonomous-system number (16-bit space is sufficient for the paper's data
/// and for our synthetic topologies; stored widened for arithmetic safety).
using Asn = std::uint32_t;

constexpr Asn kInvalidAsn = 0xffffffffu;

/// Identifier of a quasi-router: ASN in the high 16 bits, per-AS index in the
/// low 16 bits.  Total order == the "lowest router id / lowest neighbor IP
/// address" BGP tie-break.
class RouterId {
 public:
  constexpr RouterId() = default;
  constexpr RouterId(Asn asn, std::uint16_t index)
      : value_((static_cast<std::uint32_t>(asn) << 16) | index) {}

  static constexpr RouterId from_value(std::uint32_t v) {
    RouterId id;
    id.value_ = v;
    return id;
  }

  constexpr Asn asn() const { return value_ >> 16; }
  constexpr std::uint16_t index() const {
    return static_cast<std::uint16_t>(value_ & 0xffffu);
  }
  constexpr std::uint32_t value() const { return value_; }

  constexpr bool valid() const { return value_ != 0xffffffffu; }

  friend constexpr auto operator<=>(RouterId, RouterId) = default;

  /// "ASN.index", e.g. "701.2".
  std::string str() const;

 private:
  std::uint32_t value_ = 0xffffffffu;
};

constexpr RouterId kInvalidRouterId{};

}  // namespace nb

template <>
struct std::hash<nb::RouterId> {
  std::size_t operator()(nb::RouterId id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value());
  }
};
