// ASCII table rendering for benchmark reports (paper-style tables).
#pragma once

#include <string>
#include <vector>

namespace nb {

/// Column-aligned text table with optional header separator, e.g.
///
///   Criteria                  Shortest Path   Policies
///   ------------------------  --------------  ---------
///   AS-Paths which agree      23.5%           12.5%
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);
  /// Adds a horizontal rule before the next row.
  void add_rule();

  std::string render() const;

 private:
  struct Row {
    std::vector<std::string> cells;
    bool rule_before = false;
  };
  std::vector<std::string> header_;
  std::vector<Row> rows_;
  bool pending_rule_ = false;
};

/// Prints a titled section banner for bench output.
std::string section(const std::string& title);

}  // namespace nb
