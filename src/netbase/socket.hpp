// Minimal loopback TCP sockets plus the length-prefixed frame protocol
// `rdtool serve` speaks (DESIGN.md section 15).
//
// A frame is a 4-byte big-endian payload length followed by that many
// bytes of UTF-8 JSON.  The reader enforces a maximum payload size and
// reports structured statuses instead of throwing: a malformed or
// oversized header is a recoverable protocol error the server answers
// with a diagnostic, not a crash.  Reads poll in short slices so a
// draining server can abandon a blocked read promptly via the `stop`
// flag.
//
// POSIX-only (like peak_rss_bytes); every call is SIGPIPE-safe -- writes
// use MSG_NOSIGNAL so a client that hung up surfaces as an error return,
// never a process-killing signal.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace nb {

/// One connected TCP byte stream (client or accepted server side).
/// Move-only; the destructor closes the descriptor.
class TcpStream {
 public:
  enum class IoStatus : std::uint8_t {
    kOk,
    kClosed,   // orderly EOF before / within the requested bytes
    kTimeout,  // deadline passed with the read incomplete
    kStopped,  // *stop became true while waiting
    kError,    // socket error (see `error`)
  };

  TcpStream() = default;
  explicit TcpStream(int fd) : fd_(fd) {}
  ~TcpStream() { close(); }
  TcpStream(TcpStream&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  TcpStream& operator=(TcpStream&& other) noexcept;
  TcpStream(const TcpStream&) = delete;
  TcpStream& operator=(const TcpStream&) = delete;

  /// Connects to host:port (numeric IPv4, e.g. "127.0.0.1").
  static std::optional<TcpStream> connect(const std::string& host,
                                          std::uint16_t port,
                                          std::string* error = nullptr);

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void close();
  /// Shuts down both directions without closing the fd: unblocks a reader
  /// in another thread (its poll wakes with EOF).
  void shutdown_both();

  /// Reads exactly `n` bytes, polling in ~100 ms slices; gives up when
  /// `timeout_ms` elapses (0 = no deadline) or `*stop` (if non-null)
  /// becomes true.  kClosed with 0 bytes read is an orderly peer hangup;
  /// kClosed mid-buffer means the peer died mid-frame.
  IoStatus read_exact(void* buf, std::size_t n, int timeout_ms,
                      const std::atomic<bool>* stop,
                      std::string* error = nullptr);

  /// Writes all `n` bytes (retrying short writes).  False + `error` when
  /// the peer is gone; never raises SIGPIPE.
  bool write_all(const void* buf, std::size_t n, std::string* error = nullptr);

 private:
  int fd_ = -1;
};

/// Listening socket bound to 127.0.0.1 (serve is a loopback daemon; remote
/// exposure is a reverse proxy's job, not this repo's).
class TcpListener {
 public:
  TcpListener() = default;
  ~TcpListener() { close(); }
  TcpListener(TcpListener&& other) noexcept
      : fd_(other.fd_), port_(other.port_) {
    other.fd_ = -1;
  }
  TcpListener& operator=(TcpListener&& other) noexcept {
    if (this != &other) {
      close();
      fd_ = other.fd_;
      port_ = other.port_;
      other.fd_ = -1;
      other.port_ = 0;
    }
    return *this;
  }
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// Binds 127.0.0.1:port (0 = ephemeral; port() reports the choice).
  static std::optional<TcpListener> bind(std::uint16_t port,
                                         std::string* error = nullptr);

  bool valid() const { return fd_ >= 0; }
  std::uint16_t port() const { return port_; }
  void close();

  /// Waits up to `timeout_ms` for a connection; nullopt on timeout or
  /// closed listener (distinguish via valid() / `error`).
  std::optional<TcpStream> accept(int timeout_ms,
                                  std::string* error = nullptr);

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

/// Default cap on one frame's payload: far above any query this protocol
/// carries, far below a rogue client's ability to balloon the heap.
inline constexpr std::size_t kMaxFrameBytes = 1u << 20;

enum class FrameStatus : std::uint8_t {
  kOk,
  kClosed,    // orderly EOF between frames
  kTimeout,   // deadline passed
  kStopped,   // stop flag raised
  kTooLarge,  // header announced > max_bytes; stream position is now
              // unrecoverable (quarantine / close)
  kError,     // truncated frame or socket error
};

/// Reads one length-prefixed frame into `payload`.
FrameStatus read_frame(TcpStream& stream, std::string* payload,
                       int timeout_ms, const std::atomic<bool>* stop,
                       std::size_t max_bytes = kMaxFrameBytes,
                       std::string* error = nullptr);

/// Writes one frame (4-byte big-endian length + payload).
bool write_frame(TcpStream& stream, std::string_view payload,
                 std::string* error = nullptr);

}  // namespace nb
