#include "netbase/strings.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>

namespace nb {

std::vector<std::string_view> split(std::string_view text, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      out.push_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string_view> split_ws(std::string_view text) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i])))
      ++i;
    std::size_t start = i;
    while (i < text.size() &&
           !std::isspace(static_cast<unsigned char>(text[i])))
      ++i;
    if (i > start) out.push_back(text.substr(start, i - start));
  }
  return out;
}

std::string_view trim(std::string_view text) {
  std::size_t begin = 0;
  while (begin < text.size() &&
         std::isspace(static_cast<unsigned char>(text[begin])))
    ++begin;
  std::size_t end = text.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1])))
    --end;
  return text.substr(begin, end - begin);
}

std::optional<std::uint64_t> parse_u64(std::string_view text) {
  std::uint64_t value = 0;
  auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size() || text.empty())
    return std::nullopt;
  return value;
}

std::optional<double> parse_double(std::string_view text) {
  // std::from_chars<double> is available in libstdc++ 11+.
  double value = 0;
  auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size() || text.empty())
    return std::nullopt;
  return value;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

std::string join(const std::vector<std::string>& items, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += sep;
    out += items[i];
  }
  return out;
}

std::string fmt_fixed(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, value);
  return buf;
}

std::string fmt_percent(double ratio, int decimals) {
  return fmt_fixed(ratio * 100.0, decimals) + "%";
}

std::string fmt_count(std::uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (digits.size() - i) % 3 == 0) out.push_back(',');
    out.push_back(digits[i]);
  }
  return out;
}

}  // namespace nb
