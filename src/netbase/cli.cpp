#include "netbase/cli.hpp"

#include "netbase/strings.hpp"

namespace nb {

Cli::Cli(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (!starts_with(arg, "--")) {
      positional_.emplace_back(arg);
      continue;
    }
    arg.remove_prefix(2);
    auto eq = arg.find('=');
    if (eq != std::string_view::npos) {
      values_[std::string(arg.substr(0, eq))] = std::string(arg.substr(eq + 1));
    } else if (i + 1 < argc && !starts_with(argv[i + 1], "--")) {
      values_[std::string(arg)] = argv[++i];
    } else {
      values_[std::string(arg)] = "1";
    }
  }
}

std::uint64_t Cli::get_u64(const std::string& name, std::uint64_t def) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  used_[name] = true;
  auto parsed = parse_u64(it->second);
  return parsed.value_or(def);
}

double Cli::get_double(const std::string& name, double def) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  used_[name] = true;
  auto parsed = parse_double(it->second);
  return parsed.value_or(def);
}

std::string Cli::get_string(const std::string& name, std::string def) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  used_[name] = true;
  return it->second;
}

bool Cli::get_bool(const std::string& name, bool def) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  used_[name] = true;
  return it->second != "0" && it->second != "false";
}

std::vector<std::string> Cli::unused() const {
  std::vector<std::string> out;
  for (auto& [name, value] : values_)
    if (!used_.count(name)) out.push_back(name);
  return out;
}

}  // namespace nb
