#include "netbase/ip.hpp"

#include <charconv>
#include <stdexcept>

namespace nb {
namespace {

constexpr std::uint32_t mask_for_length(std::uint8_t length) {
  return length == 0 ? 0u : (0xffffffffu << (32 - length));
}

}  // namespace

std::optional<Ipv4Address> Ipv4Address::parse(std::string_view text) {
  std::uint32_t value = 0;
  const char* it = text.data();
  const char* end = text.data() + text.size();
  for (int octet = 0; octet < 4; ++octet) {
    if (octet > 0) {
      if (it == end || *it != '.') return std::nullopt;
      ++it;
    }
    unsigned part = 0;
    auto [ptr, ec] = std::from_chars(it, end, part);
    if (ec != std::errc{} || ptr == it || part > 255) return std::nullopt;
    value = (value << 8) | part;
    it = ptr;
  }
  if (it != end) return std::nullopt;
  return Ipv4Address{value};
}

std::string Ipv4Address::str() const {
  std::string out;
  out.reserve(15);
  for (int shift = 24; shift >= 0; shift -= 8) {
    if (!out.empty()) out.push_back('.');
    out += std::to_string((value_ >> shift) & 0xffu);
  }
  return out;
}

Prefix::Prefix(Ipv4Address network, std::uint8_t length) : length_(length) {
  if (length > 32) throw std::invalid_argument("prefix length > 32");
  network_ = Ipv4Address{network.value() & mask_for_length(length)};
  if (network_ != network)
    throw std::invalid_argument("prefix has host bits set: " + network.str());
}

Prefix Prefix::for_asn(std::uint32_t asn) {
  // 10.<asn_hi>.<asn_lo>.0/24 keeps per-AS prefixes disjoint for ASN < 2^16.
  return Prefix{Ipv4Address{(10u << 24) | ((asn & 0xffffu) << 8)}, 24};
}

std::optional<Prefix> Prefix::parse(std::string_view text) {
  auto slash = text.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  auto addr = Ipv4Address::parse(text.substr(0, slash));
  if (!addr) return std::nullopt;
  unsigned length = 0;
  auto rest = text.substr(slash + 1);
  auto [ptr, ec] =
      std::from_chars(rest.data(), rest.data() + rest.size(), length);
  if (ec != std::errc{} || ptr != rest.data() + rest.size() || length > 32)
    return std::nullopt;
  auto l = static_cast<std::uint8_t>(length);
  if ((addr->value() & ~mask_for_length(l)) != 0) return std::nullopt;
  return Prefix{*addr, l};
}

bool Prefix::contains(Ipv4Address addr) const {
  return (addr.value() & mask_for_length(length_)) == network_.value();
}

bool Prefix::covers(const Prefix& other) const {
  return other.length_ >= length_ && contains(other.network_);
}

std::string Prefix::str() const {
  return network_.str() + "/" + std::to_string(length_);
}

}  // namespace nb
