#include "netbase/sysinfo.hpp"

#include <algorithm>
#include <thread>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace nb {

unsigned resolve_threads(unsigned threads) {
  if (threads == 0)
    threads = std::max(1u, std::thread::hardware_concurrency());
  return std::min(threads, kMaxResolvedThreads);
}

std::uint64_t peak_rss_bytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  // macOS reports ru_maxrss in bytes.
  return static_cast<std::uint64_t>(usage.ru_maxrss);
#else
  // Linux reports ru_maxrss in kilobytes.
  return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024u;
#endif
#else
  return 0;
#endif
}

}  // namespace nb
