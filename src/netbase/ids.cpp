#include "netbase/ids.hpp"

namespace nb {

std::string RouterId::str() const {
  if (!valid()) return "invalid";
  return std::to_string(asn()) + "." + std::to_string(index());
}

}  // namespace nb
