// Process-level system introspection helpers.
#pragma once

#include <cstdint>

namespace nb {

/// Peak resident-set size of the calling process in bytes (getrusage
/// ru_maxrss).  Returns 0 on platforms where the value is unavailable.
///
/// The kernel reports a high-water mark, so the value is monotone over the
/// process lifetime: a measurement taken after several runs reflects the
/// largest of them, not the last one.
std::uint64_t peak_rss_bytes();

/// Upper bound resolve_threads will ever return.  Generous -- far above any
/// machine this repo targets -- but finite, so a typo like `--threads
/// 4000000` cannot ask a ThreadPool (or a flight recorder sized per worker)
/// for millions of tracks.
inline constexpr unsigned kMaxResolvedThreads = 512;

/// The one "--threads 0 means the hardware thread count" rule, shared by
/// every subcommand, bench and pool constructor: 0 resolves to
/// hardware_concurrency (minimum 1 -- the C++ standard allows it to report
/// 0), explicit requests pass through, and the result is clamped to
/// kMaxResolvedThreads either way.
unsigned resolve_threads(unsigned threads);

}  // namespace nb
