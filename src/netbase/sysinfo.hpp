// Process-level system introspection helpers.
#pragma once

#include <cstdint>

namespace nb {

/// Peak resident-set size of the calling process in bytes (getrusage
/// ru_maxrss).  Returns 0 on platforms where the value is unavailable.
///
/// The kernel reports a high-water mark, so the value is monotone over the
/// process lifetime: a measurement taken after several runs reflects the
/// largest of them, not the last one.
std::uint64_t peak_rss_bytes();

}  // namespace nb
