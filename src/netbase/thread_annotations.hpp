// Clang thread-safety analysis annotations (-Wthread-safety) plus an
// annotated mutex/lock pair the concurrency-bearing classes share.
//
// The macros expand to Clang's `thread_safety` attributes when the compiler
// supports them and to nothing elsewhere (GCC, MSVC), so annotated code
// compiles everywhere while clang builds get static lock-discipline
// checking; the top-level CMakeLists turns the analysis into an error on
// clang.  Annotation guide:
//
//   RD_GUARDED_BY(m)    data member readable/writable only with m held
//   RD_REQUIRES(m)      function must be called with m held
//   RD_ACQUIRE/RELEASE  function acquires/releases m (lock implementations)
//   RD_EXCLUDES(m)      function must NOT be called with m held
//   RD_NO_THREAD_SAFETY_ANALYSIS  opt-out for code the analysis cannot
//                                 follow (e.g. condition-variable re-lock
//                                 protocols split across helpers)
//
// std::mutex is not annotated as a capability, so the analysis cannot track
// it; nb::Mutex wraps it with the capability attribute and nb::MutexLock is
// the matching scoped lock.  Condition variables wait on nb::Mutex through
// std::condition_variable_any (any-lockable interface).
#pragma once

#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define RD_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef RD_THREAD_ANNOTATION
#define RD_THREAD_ANNOTATION(x)  // no-op on compilers without the analysis
#endif

#define RD_CAPABILITY(x) RD_THREAD_ANNOTATION(capability(x))
#define RD_SCOPED_CAPABILITY RD_THREAD_ANNOTATION(scoped_lockable)
#define RD_GUARDED_BY(x) RD_THREAD_ANNOTATION(guarded_by(x))
#define RD_PT_GUARDED_BY(x) RD_THREAD_ANNOTATION(pt_guarded_by(x))
#define RD_REQUIRES(...) \
  RD_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define RD_ACQUIRE(...) RD_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define RD_RELEASE(...) RD_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define RD_EXCLUDES(...) RD_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define RD_RETURN_CAPABILITY(x) RD_THREAD_ANNOTATION(lock_returned(x))
#define RD_NO_THREAD_SAFETY_ANALYSIS \
  RD_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace nb {

/// std::mutex with the `capability` attribute, so RD_GUARDED_BY members and
/// RD_REQUIRES contracts referencing it are statically checked on clang.
class RD_CAPABILITY("mutex") Mutex {
 public:
  void lock() RD_ACQUIRE() { mutex_.lock(); }
  void unlock() RD_RELEASE() { mutex_.unlock(); }
  bool try_lock() RD_THREAD_ANNOTATION(try_acquire_capability(true)) {
    return mutex_.try_lock();
  }

 private:
  std::mutex mutex_;
};

/// Scoped lock over nb::Mutex (std::lock_guard itself is unannotated).
/// Satisfies BasicLockable, so std::condition_variable_any can wait on it.
class RD_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) RD_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() RD_RELEASE() {
    if (held_) mutex_.unlock();
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// BasicLockable for std::condition_variable_any::wait: the CV unlocks
  /// around the wait and re-locks before returning.
  void lock() RD_ACQUIRE() {
    mutex_.lock();
    held_ = true;
  }
  void unlock() RD_RELEASE() {
    held_ = false;
    mutex_.unlock();
  }

 private:
  Mutex& mutex_;
  bool held_ = true;
};

}  // namespace nb
