// Histogram and percentile helpers used by the dataset-statistics figures
// (Fig. 2, Table 1) and by the benchmark reports.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace nb {

/// Integer-valued histogram with exact counts per value.
class Histogram {
 public:
  void add(std::uint64_t value, std::uint64_t count = 1);

  std::uint64_t total() const { return total_; }
  std::uint64_t count_of(std::uint64_t value) const;
  /// Number of samples with value >= threshold.
  std::uint64_t count_at_least(std::uint64_t threshold) const;
  /// Fraction of samples with value >= threshold (0 if empty).
  double fraction_at_least(std::uint64_t threshold) const;

  bool empty() const { return total_ == 0; }
  std::uint64_t min() const;
  std::uint64_t max() const;
  double mean() const;

  /// Value at percentile p in [0, 100]; the smallest value v such that at
  /// least p% of samples are <= v.  Requires a non-empty histogram.
  std::uint64_t percentile(double p) const;

  const std::map<std::uint64_t, std::uint64_t>& buckets() const {
    return buckets_;
  }

  /// ASCII rendering with a logarithmic bar scale, one row per value (values
  /// above `fold_above` folded into exponentially wider buckets).
  std::string render(std::uint64_t fold_above = 16) const;

 private:
  std::map<std::uint64_t, std::uint64_t> buckets_;
  std::uint64_t total_ = 0;
};

/// Percentile of a sample vector (p in [0,100]); sorts a copy.
double percentile(std::vector<double> samples, double p);

/// Ordinary least squares fit y = a + b*x; returns {a, b, r2}.
struct LinearFit {
  double intercept = 0;
  double slope = 0;
  double r2 = 0;
};
LinearFit fit_line(const std::vector<double>& xs, const std::vector<double>& ys);

}  // namespace nb
