#include "netbase/table.hpp"

#include <algorithm>

namespace nb {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  rows_.push_back({std::move(cells), pending_rule_});
  pending_rule_ = false;
}

void TextTable::add_rule() { pending_rule_ = true; }

std::string TextTable::render() const {
  std::size_t cols = header_.size();
  for (auto& row : rows_) cols = std::max(cols, row.cells.size());
  std::vector<std::size_t> widths(cols, 0);
  auto widen = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i)
      widths[i] = std::max(widths[i], cells[i].size());
  };
  widen(header_);
  for (auto& row : rows_) widen(row.cells);

  auto emit = [&](const std::vector<std::string>& cells, std::string& out) {
    for (std::size_t i = 0; i < cols; ++i) {
      std::string cell = i < cells.size() ? cells[i] : "";
      cell.resize(widths[i], ' ');
      out += cell;
      if (i + 1 < cols) out += "  ";
    }
    while (!out.empty() && out.back() == ' ') out.pop_back();
    out += "\n";
  };
  auto rule = [&](std::string& out) {
    for (std::size_t i = 0; i < cols; ++i) {
      out += std::string(widths[i], '-');
      if (i + 1 < cols) out += "  ";
    }
    out += "\n";
  };

  std::string out;
  if (!header_.empty()) {
    emit(header_, out);
    rule(out);
  }
  for (auto& row : rows_) {
    if (row.rule_before) rule(out);
    emit(row.cells, out);
  }
  return out;
}

std::string section(const std::string& title) {
  std::string bar(title.size() + 4, '=');
  return "\n" + bar + "\n= " + title + " =\n" + bar + "\n";
}

}  // namespace nb
