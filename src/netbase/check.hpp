// Project-wide runtime checks, replacing bare <cassert> asserts.
//
// RD_CHECK(cond)   -- always compiled in, every build type.  For cheap
//                     preconditions on hot paths (a single predictable
//                     branch): RelWithDebInfo defines NDEBUG, which silently
//                     drops assert(), so cheap checks must not go through it.
// RD_DCHECK(cond)  -- compiled in when NDEBUG is unset OR the build defines
//                     RD_ENABLE_DCHECKS (the sanitizer presets do).  For
//                     checks too expensive for release hot paths (O(n)
//                     scans, re-validation of container invariants).
//
// Both abort with file:line and the failed expression; the optional second
// argument adds context:  RD_CHECK(bound > 0, "Rng::below bound");
// The analysis linter (src/analysis) reports the same classes of violation
// as structured diagnostics instead of aborting; these macros are the last
// line of defense where returning a diagnostic is not possible.
#pragma once

namespace nb {

[[noreturn]] void check_failed(const char* expr, const char* file, int line,
                               const char* message);

}  // namespace nb

#define RD_CHECK_1(cond) \
  ((cond) ? static_cast<void>(0) \
          : ::nb::check_failed(#cond, __FILE__, __LINE__, nullptr))
#define RD_CHECK_2(cond, msg) \
  ((cond) ? static_cast<void>(0) \
          : ::nb::check_failed(#cond, __FILE__, __LINE__, (msg)))
#define RD_CHECK_SELECT(a, b, macro, ...) macro
#define RD_CHECK(...) \
  RD_CHECK_SELECT(__VA_ARGS__, RD_CHECK_2, RD_CHECK_1)(__VA_ARGS__)

#if !defined(NDEBUG) || defined(RD_ENABLE_DCHECKS)
#define RD_DCHECK(...) RD_CHECK(__VA_ARGS__)
#else
#define RD_DCHECK(...) static_cast<void>(0)
#endif
