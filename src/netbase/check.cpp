#include "netbase/check.hpp"

#include <cstdio>
#include <cstdlib>

namespace nb {

void check_failed(const char* expr, const char* file, int line,
                  const char* message) {
  std::fprintf(stderr, "%s:%d: RD_CHECK failed: %s%s%s\n", file, line, expr,
               message != nullptr ? " -- " : "",
               message != nullptr ? message : "");
  std::fflush(stderr);
  std::abort();
}

}  // namespace nb
