// Atomic file publication shared by every artifact writer in the repo
// (observability flushes, flight-recorder dumps, refine checkpoints,
// rdtool outputs): write the contents to a sibling temp file, flush, then
// rename over the target.  A crash -- or a second SIGINT during a long
// flush -- leaves either the complete old file or the complete new one,
// never a truncated document that `rdtool stats`, Perfetto or a resume
// would choke on.
#pragma once

#include <string>
#include <string_view>

namespace nb {

/// Writes `contents` to `path` via `path + ".tmp"` + rename.  On failure
/// the temp file is removed, `error` (if non-null) names the failing step,
/// and the previous `path` contents (if any) are untouched.
bool write_file_atomic(const std::string& path, std::string_view contents,
                       std::string* error = nullptr);

}  // namespace nb
