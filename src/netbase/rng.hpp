// Deterministic random number generation.
//
// Every experiment in the repo is seeded; the same seed reproduces the same
// synthetic Internet, the same observation-point split and the same match
// rates.  We use xoshiro256** (public-domain, Blackman & Vigna) seeded via
// splitmix64, rather than std::mt19937, so results are stable across standard
// library implementations.
#pragma once

#include <cstdint>
#include <numeric>
#include <vector>

namespace nb {

/// splitmix64 step; used for seeding and cheap hashing.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// xoshiro256** generator.  Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 1) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound).  bound must be > 0.
  std::uint64_t below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform();

  /// True with probability p.
  bool chance(double p) { return uniform() < p; }

  /// Samples an index according to non-negative weights (empty -> 0).
  std::size_t weighted(const std::vector<double>& weights);

  /// Pareto-distributed value >= 1 with shape alpha (heavy-tailed degrees).
  double pareto(double alpha);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::size_t j = below(i);
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Picks a uniformly random element (container must be non-empty).
  template <typename T>
  const T& pick(const std::vector<T>& items) {
    return items[below(items.size())];
  }

  /// Derives an independent child generator; used to give each prefix /
  /// each AS its own stream so that changing one knob does not reshuffle
  /// unrelated randomness.
  Rng fork(std::uint64_t salt);

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4] = {};
};

}  // namespace nb
