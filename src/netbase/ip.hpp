// Minimal IPv4 address / prefix types with text parsing and formatting.
//
// The simulator identifies destinations by prefix.  Following the paper we
// originate one prefix per AS, but the types support arbitrary CIDR blocks so
// that RIB dumps read and write like real table dumps.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

namespace nb {

/// An IPv4 address stored in host byte order.
class Ipv4Address {
 public:
  constexpr Ipv4Address() = default;
  explicit constexpr Ipv4Address(std::uint32_t value) : value_(value) {}
  constexpr Ipv4Address(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                        std::uint8_t d)
      : value_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
               (std::uint32_t{c} << 8) | d) {}

  constexpr std::uint32_t value() const { return value_; }

  /// Parses dotted-quad notation; returns nullopt on malformed input.
  static std::optional<Ipv4Address> parse(std::string_view text);

  std::string str() const;

  friend constexpr auto operator<=>(Ipv4Address, Ipv4Address) = default;

 private:
  std::uint32_t value_ = 0;
};

/// A CIDR prefix.  Invariant: all host bits below `length` are zero.
class Prefix {
 public:
  constexpr Prefix() = default;
  Prefix(Ipv4Address network, std::uint8_t length);

  /// The per-AS prefix used throughout the reproduction: ASN mapped into
  /// 10.x.y.0/24 style space (asn in the middle 16 bits).
  static Prefix for_asn(std::uint32_t asn);

  /// Parses "a.b.c.d/len"; returns nullopt on malformed input or stray host
  /// bits.
  static std::optional<Prefix> parse(std::string_view text);

  constexpr Ipv4Address network() const { return network_; }
  constexpr std::uint8_t length() const { return length_; }

  /// True if `addr` falls inside this prefix.
  bool contains(Ipv4Address addr) const;
  /// True if `other` is equal to or more specific than this prefix.
  bool covers(const Prefix& other) const;

  std::string str() const;

  friend constexpr auto operator<=>(const Prefix&, const Prefix&) = default;

 private:
  Ipv4Address network_{};
  std::uint8_t length_ = 0;
};

}  // namespace nb

template <>
struct std::hash<nb::Ipv4Address> {
  std::size_t operator()(nb::Ipv4Address a) const noexcept {
    return std::hash<std::uint32_t>{}(a.value());
  }
};

template <>
struct std::hash<nb::Prefix> {
  std::size_t operator()(const nb::Prefix& p) const noexcept {
    return std::hash<std::uint64_t>{}(
        (std::uint64_t{p.network().value()} << 8) | p.length());
  }
};
