// Tiny command-line flag parser shared by benches and examples.
//
// Supports --name=value and --name value; unknown flags are reported.  Kept
// deliberately small: benches need seeds and sizes, not a framework.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace nb {

class Cli {
 public:
  Cli(int argc, char** argv);

  /// Value lookups with defaults.  A flag given without value counts as "1"
  /// (boolean style).
  std::uint64_t get_u64(const std::string& name, std::uint64_t def) const;
  double get_double(const std::string& name, double def) const;
  std::string get_string(const std::string& name, std::string def) const;
  bool get_bool(const std::string& name, bool def = false) const;

  bool has(const std::string& name) const { return values_.count(name) > 0; }

  /// Positional (non-flag) arguments.
  const std::vector<std::string>& positional() const { return positional_; }

  /// Flags that were set but never read; useful for typo detection.
  std::vector<std::string> unused() const;

 private:
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> used_;
  std::vector<std::string> positional_;
};

}  // namespace nb
