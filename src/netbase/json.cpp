#include "netbase/json.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>

#include "netbase/check.hpp"

namespace nb {

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::comma_and_newline() {
  RD_CHECK(!has_member_.empty(), "JsonWriter: unbalanced container stack");
  if (after_key_) {
    after_key_ = false;
    return;  // the key already wrote its separator
  }
  if (has_member_.back()) out_ += ',';
  if (indent_ > 0 && depth_ > 0) {
    out_ += '\n';
    out_.append(static_cast<std::size_t>(indent_ * depth_), ' ');
  } else if (has_member_.back()) {
    out_ += ' ';
  }
  has_member_.back() = true;
}

JsonWriter& JsonWriter::begin_object() {
  comma_and_newline();
  out_ += '{';
  ++depth_;
  has_member_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  RD_CHECK(depth_ > 0, "JsonWriter: end_object at depth 0");
  const bool had_members = has_member_.back();
  has_member_.pop_back();
  --depth_;
  if (indent_ > 0 && had_members) {
    out_ += '\n';
    out_.append(static_cast<std::size_t>(indent_ * depth_), ' ');
  }
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma_and_newline();
  out_ += '[';
  ++depth_;
  has_member_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  RD_CHECK(depth_ > 0, "JsonWriter: end_array at depth 0");
  const bool had_members = has_member_.back();
  has_member_.pop_back();
  --depth_;
  if (indent_ > 0 && had_members) {
    out_ += '\n';
    out_.append(static_cast<std::size_t>(indent_ * depth_), ' ');
  }
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  comma_and_newline();
  out_ += '"';
  out_ += json_escape(name);
  out_ += "\": ";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view text) {
  comma_and_newline();
  out_ += '"';
  out_ += json_escape(text);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(bool b) {
  comma_and_newline();
  out_ += b ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::value(double number) {
  comma_and_newline();
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", number);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t number) {
  comma_and_newline();
  out_ += std::to_string(number);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t number) {
  comma_and_newline();
  out_ += std::to_string(number);
  return *this;
}

JsonWriter& JsonWriter::value_fixed(double number, int decimals) {
  comma_and_newline();
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, number);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::raw(std::string_view fragment) {
  comma_and_newline();
  out_ += fragment;
  return *this;
}

// ---- parsing ---------------------------------------------------------------

const JsonValue* JsonValue::find(std::string_view key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [name, member] : object) {
    if (name == key) return &member;
  }
  return nullptr;
}

double JsonValue::number_or(std::string_view key, double fallback) const {
  const JsonValue* member = find(key);
  return member != nullptr && member->is_number() ? member->number : fallback;
}

std::string_view JsonValue::string_or(std::string_view key,
                                      std::string_view fallback) const {
  const JsonValue* member = find(key);
  return member != nullptr && member->is_string() ? member->string : fallback;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> parse(std::string* error) {
    JsonValue value;
    if (!parse_value(value)) {
      fill_error(error);
      return std::nullopt;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      error_ = "trailing characters after document";
      fill_error(error);
      return std::nullopt;
    }
    return value;
  }

 private:
  /// Recursion guard for parse_value/parse_object/parse_array: a hostile
  /// document of 100k '[' characters would otherwise overflow the stack
  /// before any semantic check runs.
  static constexpr std::size_t kMaxDepth = 256;

  void fill_error(std::string* error) const {
    if (error == nullptr) return;
    // 1-based line of the failure position, so parser errors are uniform
    // with the line-numbered text-format parsers (model_io, rib_io).
    std::size_t line = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') ++line;
    }
    *error = error_ + " at line " + std::to_string(line) + ", offset " +
             std::to_string(pos_);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool fail(const char* message) {
    error_ = message;
    return false;
  }

  bool consume(char expected, const char* message) {
    if (pos_ >= text_.size() || text_[pos_] != expected) return fail(message);
    ++pos_;
    return true;
  }

  bool parse_value(JsonValue& out) {
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{':
        return parse_object(out);
      case '[':
        return parse_array(out);
      case '"':
        out.type = JsonValue::Type::kString;
        return parse_string(out.string);
      case 't':
      case 'f':
        return parse_literal(out);
      case 'n':
        return parse_literal(out);
      default:
        return parse_number(out);
    }
  }

  bool parse_object(JsonValue& out) {
    if (depth_ >= kMaxDepth) return fail("nesting too deep");
    ++depth_;
    out.type = JsonValue::Type::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      --depth_;
      return true;
    }
    for (;;) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (!consume(':', "expected ':' after object key")) return false;
      JsonValue member;
      if (!parse_value(member)) return false;
      if (out.find(key) == nullptr)
        out.object.emplace_back(std::move(key), std::move(member));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (!consume('}', "expected ',' or '}' in object")) return false;
      --depth_;
      return true;
    }
  }

  bool parse_array(JsonValue& out) {
    if (depth_ >= kMaxDepth) return fail("nesting too deep");
    ++depth_;
    out.type = JsonValue::Type::kArray;
    ++pos_;  // '['
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      --depth_;
      return true;
    }
    for (;;) {
      JsonValue element;
      if (!parse_value(element)) return false;
      out.array.push_back(std::move(element));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (!consume(']', "expected ',' or ']' in array")) return false;
      --depth_;
      return true;
    }
  }

  bool parse_string(std::string& out) {
    if (!consume('"', "expected string")) return false;
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) return fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return fail("invalid \\u escape");
          }
          // Our own writer only emits \u00XX control escapes; encode the
          // general case as UTF-8 anyway (surrogate pairs unsupported).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          return fail("unknown escape character");
      }
    }
    return fail("unterminated string");
  }

  bool parse_literal(JsonValue& out) {
    const std::string_view rest = text_.substr(pos_);
    if (rest.substr(0, 4) == "true") {
      out.type = JsonValue::Type::kBool;
      out.boolean = true;
      pos_ += 4;
      return true;
    }
    if (rest.substr(0, 5) == "false") {
      out.type = JsonValue::Type::kBool;
      out.boolean = false;
      pos_ += 5;
      return true;
    }
    if (rest.substr(0, 4) == "null") {
      out.type = JsonValue::Type::kNull;
      pos_ += 4;
      return true;
    }
    return fail("invalid literal");
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return fail("expected a value");
    out.type = JsonValue::Type::kNumber;
    const auto [ptr, ec] = std::from_chars(text_.data() + start,
                                           text_.data() + pos_, out.number);
    if (ec != std::errc() || ptr != text_.data() + pos_) {
      pos_ = start;
      return fail("malformed number");
    }
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::size_t depth_ = 0;
  std::string error_;
};

}  // namespace

std::optional<JsonValue> json_parse(std::string_view text, std::string* error) {
  return Parser(text).parse(error);
}

}  // namespace nb
