#include "netbase/fsio.hpp"

#include <cstdio>
#include <fstream>

namespace nb {

bool write_file_atomic(const std::string& path, std::string_view contents,
                       std::string* error) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      if (error != nullptr) *error = "cannot write " + tmp;
      return false;
    }
    out.write(contents.data(),
              static_cast<std::streamsize>(contents.size()));
    out.flush();
    if (!out.good()) {
      if (error != nullptr) *error = "short write to " + tmp;
      std::remove(tmp.c_str());
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    if (error != nullptr) *error = "cannot rename " + tmp + " to " + path;
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace nb
