#include "netbase/rng.hpp"

#include <cmath>

#include "netbase/check.hpp"

namespace nb {

std::uint64_t Rng::below(std::uint64_t bound) {
  RD_CHECK(bound > 0, "Rng::below bound must be positive");
  // Lemire-style rejection-free-enough approach: rejection sampling on the
  // top bits keeps the distribution exactly uniform.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    std::uint64_t r = (*this)();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) {
  RD_CHECK(lo <= hi, "Rng::range requires lo <= hi");
  return lo + static_cast<std::int64_t>(
                  below(static_cast<std::uint64_t>(hi - lo) + 1));
}

double Rng::uniform() {
  // 53 random mantissa bits.
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

std::size_t Rng::weighted(const std::vector<double>& weights) {
  double total = 0;
  for (double w : weights) {
    RD_DCHECK(w >= 0, "Rng::weighted weights must be non-negative");
    total += w;
  }
  if (total <= 0) return 0;
  double target = uniform() * total;
  double acc = 0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (target < acc) return i;
  }
  return weights.size() - 1;
}

double Rng::pareto(double alpha) {
  double u = uniform();
  // Avoid division by zero for u == 1 - epsilon handling not needed: u < 1.
  return std::pow(1.0 - u, -1.0 / alpha);
}

Rng Rng::fork(std::uint64_t salt) {
  std::uint64_t sm = (*this)() ^ (salt * 0x9e3779b97f4a7c15ull);
  std::uint64_t derived = splitmix64(sm);
  return Rng{derived};
}

}  // namespace nb
