#include "netbase/stats.hpp"

#include <algorithm>
#include <cmath>

#include "netbase/check.hpp"
#include "netbase/strings.hpp"

namespace nb {

void Histogram::add(std::uint64_t value, std::uint64_t count) {
  buckets_[value] += count;
  total_ += count;
}

std::uint64_t Histogram::count_of(std::uint64_t value) const {
  auto it = buckets_.find(value);
  return it == buckets_.end() ? 0 : it->second;
}

std::uint64_t Histogram::count_at_least(std::uint64_t threshold) const {
  std::uint64_t count = 0;
  for (auto it = buckets_.lower_bound(threshold); it != buckets_.end(); ++it)
    count += it->second;
  return count;
}

double Histogram::fraction_at_least(std::uint64_t threshold) const {
  if (total_ == 0) return 0;
  return static_cast<double>(count_at_least(threshold)) /
         static_cast<double>(total_);
}

std::uint64_t Histogram::min() const {
  RD_CHECK(!buckets_.empty(), "Histogram::min on empty histogram");
  return buckets_.begin()->first;
}

std::uint64_t Histogram::max() const {
  RD_CHECK(!buckets_.empty(), "Histogram::max on empty histogram");
  return buckets_.rbegin()->first;
}

double Histogram::mean() const {
  if (total_ == 0) return 0;
  double sum = 0;
  for (auto& [value, count] : buckets_)
    sum += static_cast<double>(value) * static_cast<double>(count);
  return sum / static_cast<double>(total_);
}

std::uint64_t Histogram::percentile(double p) const {
  RD_CHECK(total_ > 0, "Histogram::percentile on empty histogram");
  RD_DCHECK(p >= 0 && p <= 100, "percentile p outside [0, 100]");
  const double target = p / 100.0 * static_cast<double>(total_);
  std::uint64_t seen = 0;
  for (auto& [value, count] : buckets_) {
    seen += count;
    if (static_cast<double>(seen) >= target) return value;
  }
  return buckets_.rbegin()->first;
}

std::string Histogram::render(std::uint64_t fold_above) const {
  if (buckets_.empty()) return "(empty histogram)\n";
  // Fold values above the threshold into power-of-two buckets so the tail
  // stays readable.
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::uint64_t> rows;
  for (auto& [value, count] : buckets_) {
    if (value <= fold_above) {
      rows[{value, value}] += count;
    } else {
      std::uint64_t lo = fold_above + 1;
      std::uint64_t width = fold_above + 1;
      while (value > lo + width - 1) {
        lo += width;
        width *= 2;
      }
      rows[{lo, lo + width - 1}] += count;
    }
  }
  std::uint64_t max_count = 1;
  for (auto& [range, count] : rows) max_count = std::max(max_count, count);
  std::string out;
  for (auto& [range, count] : rows) {
    std::string label = range.first == range.second
                            ? std::to_string(range.first)
                            : std::to_string(range.first) + "-" +
                                  std::to_string(range.second);
    while (label.size() < 12) label.push_back(' ');
    // log-scaled bar: bar length proportional to log10(count).
    int bar = count == 0 ? 0
                         : 1 + static_cast<int>(std::log10(
                                   static_cast<double>(count)) /
                                   std::max(1.0, std::log10(static_cast<double>(
                                                     max_count))) *
                                   40.0);
    out += label + " | " + std::string(static_cast<std::size_t>(bar), '#') +
           " " + fmt_count(count) + "\n";
  }
  return out;
}

double percentile(std::vector<double> samples, double p) {
  RD_CHECK(!samples.empty(), "percentile of empty sample vector");
  RD_DCHECK(p >= 0 && p <= 100, "percentile p outside [0, 100]");
  std::sort(samples.begin(), samples.end());
  const double rank = p / 100.0 * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, samples.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

LinearFit fit_line(const std::vector<double>& xs,
                   const std::vector<double>& ys) {
  LinearFit fit;
  const std::size_t n = std::min(xs.size(), ys.size());
  if (n < 2) return fit;
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
    syy += ys[i] * ys[i];
  }
  const double dn = static_cast<double>(n);
  const double denom = dn * sxx - sx * sx;
  if (denom == 0) return fit;
  fit.slope = (dn * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / dn;
  const double ss_tot = syy - sy * sy / dn;
  double ss_res = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double e = ys[i] - (fit.intercept + fit.slope * xs[i]);
    ss_res += e * e;
  }
  fit.r2 = ss_tot > 0 ? 1.0 - ss_res / ss_tot : 1.0;
  return fit;
}

}  // namespace nb
