// Minimal JSON emission and parsing shared by every machine-readable
// output in the repo (diagnostics, bench reports, the obs metric/trace
// export) and by `rdtool stats`, which reads traces back.
//
// JsonWriter replaces the hand-rolled string concatenation that used to
// live in diagnostics.cpp, bench_refine.cpp and rdtool's --json blocks:
// it handles comma placement and escaping via a small nesting stack, so
// emitters only state structure.  Output style is stable: `": "` after
// keys and `", "` between siblings (the historical diagnostics format);
// an optional indent width switches to pretty-printed multi-line output
// for reports meant to be read in a pager.
//
// json_parse is the reading counterpart -- a strict recursive-descent
// parser for the documents this repo itself writes (objects, arrays,
// strings with the escapes JsonWriter emits, numbers, booleans, null).
// It exists so tools can consume their own artifacts (e.g. `rdtool
// stats` over a Chrome trace) without an external dependency; it is not
// a general-purpose validator, but it accepts all valid JSON and
// rejects malformed input with a position-carrying error.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace nb {

/// Escapes quotes, backslashes and control characters for embedding in a
/// JSON string literal (no surrounding quotes).
std::string json_escape(std::string_view text);

class JsonWriter {
 public:
  /// indent == 0 emits one line; indent > 0 pretty-prints with that many
  /// spaces per nesting level.
  explicit JsonWriter(int indent = 0) : indent_(indent) {}

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Object key; must be followed by exactly one value (or container).
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view text);
  JsonWriter& value(const char* text) { return value(std::string_view(text)); }
  JsonWriter& value(bool b);
  JsonWriter& value(double number);
  JsonWriter& value(std::uint64_t number);
  JsonWriter& value(std::int64_t number);
  JsonWriter& value(int number) { return value(static_cast<std::int64_t>(number)); }
  JsonWriter& value(unsigned number) { return value(static_cast<std::uint64_t>(number)); }
  /// Fixed-decimal double (timings): `decimals` digits after the point.
  JsonWriter& value_fixed(double number, int decimals);
  /// Splices a pre-rendered JSON fragment as one value.  Escape hatch for
  /// callers composing from already-serialized pieces (e.g. the
  /// diagnostics_to_json extra fields); the fragment must itself be valid.
  JsonWriter& raw(std::string_view fragment);

  /// The document so far.  Call after closing every container.
  const std::string& str() const { return out_; }

 private:
  void comma_and_newline();

  std::string out_;
  int indent_ = 0;
  int depth_ = 0;
  // Per-depth: does the current container already hold a member?
  std::vector<bool> has_member_{false};
  bool after_key_ = false;
};

struct JsonValue {
  enum class Type : std::uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject,
  };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<JsonValue> array;
  /// Insertion order preserved (duplicate keys keep the first).
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }
  bool is_string() const { return type == Type::kString; }
  bool is_number() const { return type == Type::kNumber; }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const;
  /// Convenience: member's number (0 when absent / not a number).
  double number_or(std::string_view key, double fallback = 0) const;
  /// Convenience: member's string ("" when absent / not a string).
  std::string_view string_or(std::string_view key,
                             std::string_view fallback = {}) const;
};

/// Parses a complete JSON document (surrounding whitespace allowed).
/// Returns nullopt and fills `error` (if non-null) on malformed input.
std::optional<JsonValue> json_parse(std::string_view text,
                                    std::string* error = nullptr);

}  // namespace nb
