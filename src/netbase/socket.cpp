#include "netbase/socket.hpp"

#include <cerrno>
#include <chrono>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#define RD_HAVE_SOCKETS 1
#endif

namespace nb {

namespace {

#ifdef RD_HAVE_SOCKETS

void set_error(std::string* error, const char* what) {
  if (error != nullptr)
    *error = std::string(what) + ": " + std::strerror(errno);
}

/// Milliseconds left until `deadline`; `timeout_ms == 0` means "forever".
int slice_ms(std::chrono::steady_clock::time_point deadline, int timeout_ms) {
  constexpr int kSlice = 100;  // poll granularity for stop-flag checks
  if (timeout_ms == 0) return kSlice;
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                        deadline - std::chrono::steady_clock::now())
                        .count();
  if (left <= 0) return 0;
  return static_cast<int>(std::min<long long>(left, kSlice));
}

#ifndef MSG_NOSIGNAL
#define MSG_NOSIGNAL 0
#endif

#endif  // RD_HAVE_SOCKETS

}  // namespace

TcpStream& TcpStream::operator=(TcpStream&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

#ifdef RD_HAVE_SOCKETS

void TcpStream::close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

void TcpStream::shutdown_both() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

std::optional<TcpStream> TcpStream::connect(const std::string& host,
                                            std::uint16_t port,
                                            std::string* error) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    set_error(error, "socket");
    return std::nullopt;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    if (error != nullptr) *error = "bad address " + host;
    ::close(fd);
    return std::nullopt;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    set_error(error, "connect");
    ::close(fd);
    return std::nullopt;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return TcpStream(fd);
}

TcpStream::IoStatus TcpStream::read_exact(void* buf, std::size_t n,
                                          int timeout_ms,
                                          const std::atomic<bool>* stop,
                                          std::string* error) {
  if (fd_ < 0) {
    if (error != nullptr) *error = "read on closed stream";
    return IoStatus::kError;
  }
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  std::size_t got = 0;
  while (got < n) {
    if (stop != nullptr && stop->load(std::memory_order_relaxed))
      return IoStatus::kStopped;
    const int wait = slice_ms(deadline, timeout_ms);
    if (timeout_ms != 0 && wait == 0) return IoStatus::kTimeout;
    pollfd pfd{fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, wait);
    if (ready < 0) {
      if (errno == EINTR) continue;
      set_error(error, "poll");
      return IoStatus::kError;
    }
    if (ready == 0) continue;  // slice elapsed; re-check stop/deadline
    const ssize_t r =
        ::recv(fd_, static_cast<char*>(buf) + got, n - got, 0);
    if (r == 0) {
      if (error != nullptr && got > 0) *error = "peer closed mid-read";
      return IoStatus::kClosed;
    }
    if (r < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      set_error(error, "recv");
      return IoStatus::kError;
    }
    got += static_cast<std::size_t>(r);
  }
  return IoStatus::kOk;
}

bool TcpStream::write_all(const void* buf, std::size_t n, std::string* error) {
  if (fd_ < 0) {
    if (error != nullptr) *error = "write on closed stream";
    return false;
  }
  std::size_t sent = 0;
  while (sent < n) {
    const ssize_t w = ::send(fd_, static_cast<const char*>(buf) + sent,
                             n - sent, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      set_error(error, "send");
      return false;
    }
    sent += static_cast<std::size_t>(w);
  }
  return true;
}

void TcpListener::close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

std::optional<TcpListener> TcpListener::bind(std::uint16_t port,
                                             std::string* error) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    set_error(error, "socket");
    return std::nullopt;
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    set_error(error, "bind");
    ::close(fd);
    return std::nullopt;
  }
  if (::listen(fd, 64) != 0) {
    set_error(error, "listen");
    ::close(fd);
    return std::nullopt;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    set_error(error, "getsockname");
    ::close(fd);
    return std::nullopt;
  }
  TcpListener listener;
  listener.fd_ = fd;
  listener.port_ = ntohs(addr.sin_port);
  return listener;
}

std::optional<TcpStream> TcpListener::accept(int timeout_ms,
                                             std::string* error) {
  if (fd_ < 0) {
    if (error != nullptr) *error = "accept on closed listener";
    return std::nullopt;
  }
  pollfd pfd{fd_, POLLIN, 0};
  const int ready = ::poll(&pfd, 1, timeout_ms);
  if (ready <= 0) {
    if (ready < 0 && errno != EINTR) set_error(error, "poll");
    return std::nullopt;
  }
  const int fd = ::accept(fd_, nullptr, nullptr);
  if (fd < 0) {
    set_error(error, "accept");
    return std::nullopt;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return TcpStream(fd);
}

#else  // !RD_HAVE_SOCKETS

// Non-POSIX stub: every operation fails with a clear error so `rdtool
// serve` degrades to "unsupported on this platform" instead of failing to
// link.
void TcpStream::close() { fd_ = -1; }
void TcpStream::shutdown_both() {}
std::optional<TcpStream> TcpStream::connect(const std::string&, std::uint16_t,
                                            std::string* error) {
  if (error != nullptr) *error = "sockets unsupported on this platform";
  return std::nullopt;
}
TcpStream::IoStatus TcpStream::read_exact(void*, std::size_t, int,
                                          const std::atomic<bool>*,
                                          std::string* error) {
  if (error != nullptr) *error = "sockets unsupported on this platform";
  return IoStatus::kError;
}
bool TcpStream::write_all(const void*, std::size_t, std::string* error) {
  if (error != nullptr) *error = "sockets unsupported on this platform";
  return false;
}
void TcpListener::close() { fd_ = -1; }
std::optional<TcpListener> TcpListener::bind(std::uint16_t,
                                             std::string* error) {
  if (error != nullptr) *error = "sockets unsupported on this platform";
  return std::nullopt;
}
std::optional<TcpStream> TcpListener::accept(int, std::string* error) {
  if (error != nullptr) *error = "sockets unsupported on this platform";
  return std::nullopt;
}

#endif  // RD_HAVE_SOCKETS

FrameStatus read_frame(TcpStream& stream, std::string* payload,
                       int timeout_ms, const std::atomic<bool>* stop,
                       std::size_t max_bytes, std::string* error) {
  unsigned char header[4];
  switch (stream.read_exact(header, sizeof(header), timeout_ms, stop, error)) {
    case TcpStream::IoStatus::kOk:
      break;
    case TcpStream::IoStatus::kClosed:
      return FrameStatus::kClosed;
    case TcpStream::IoStatus::kTimeout:
      return FrameStatus::kTimeout;
    case TcpStream::IoStatus::kStopped:
      return FrameStatus::kStopped;
    case TcpStream::IoStatus::kError:
      return FrameStatus::kError;
  }
  const std::uint32_t length = (static_cast<std::uint32_t>(header[0]) << 24) |
                               (static_cast<std::uint32_t>(header[1]) << 16) |
                               (static_cast<std::uint32_t>(header[2]) << 8) |
                               static_cast<std::uint32_t>(header[3]);
  if (length > max_bytes) {
    if (error != nullptr)
      *error = "frame of " + std::to_string(length) + " bytes exceeds cap " +
               std::to_string(max_bytes);
    return FrameStatus::kTooLarge;
  }
  payload->resize(length);
  if (length == 0) return FrameStatus::kOk;
  switch (stream.read_exact(payload->data(), length, timeout_ms, stop,
                            error)) {
    case TcpStream::IoStatus::kOk:
      return FrameStatus::kOk;
    case TcpStream::IoStatus::kTimeout:
      return FrameStatus::kTimeout;
    case TcpStream::IoStatus::kStopped:
      return FrameStatus::kStopped;
    case TcpStream::IoStatus::kClosed:
    case TcpStream::IoStatus::kError:
      // A frame that announced `length` bytes and delivered fewer is a
      // protocol error, not an orderly close.
      if (error != nullptr && error->empty()) *error = "truncated frame";
      return FrameStatus::kError;
  }
  return FrameStatus::kError;
}

bool write_frame(TcpStream& stream, std::string_view payload,
                 std::string* error) {
  if (payload.size() > 0xffffffffull) {
    if (error != nullptr) *error = "frame too large to encode";
    return false;
  }
  const auto length = static_cast<std::uint32_t>(payload.size());
  const unsigned char header[4] = {
      static_cast<unsigned char>(length >> 24),
      static_cast<unsigned char>(length >> 16),
      static_cast<unsigned char>(length >> 8),
      static_cast<unsigned char>(length),
  };
  return stream.write_all(header, sizeof(header), error) &&
         stream.write_all(payload.data(), payload.size(), error);
}

}  // namespace nb
