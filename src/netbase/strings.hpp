// Small string utilities used by parsers and report formatting.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace nb {

/// Splits on a single character; keeps empty fields.
std::vector<std::string_view> split(std::string_view text, char sep);

/// Splits on runs of whitespace; drops empty fields.
std::vector<std::string_view> split_ws(std::string_view text);

/// Strips leading/trailing whitespace.
std::string_view trim(std::string_view text);

/// Parses an unsigned integer; whole-string match required.
std::optional<std::uint64_t> parse_u64(std::string_view text);

/// Parses a double; whole-string match required.
std::optional<double> parse_double(std::string_view text);

/// True if `text` starts with `prefix`.
bool starts_with(std::string_view text, std::string_view prefix);

/// Joins items with a separator.
std::string join(const std::vector<std::string>& items, std::string_view sep);

/// Formats a double with fixed decimals.
std::string fmt_fixed(double value, int decimals);

/// Formats a ratio as a percentage string, e.g. "23.5%".
std::string fmt_percent(double ratio, int decimals = 1);

/// Thousands-separated integer, e.g. "4,730,222".
std::string fmt_count(std::uint64_t value);

}  // namespace nb
