// One "flush all observability atomically" path shared by every exit edge
// that publishes artifacts: rdtool refine (success, degraded, fault AND
// cooperative interrupt / exit 130) and the serve daemon's SIGTERM drain.
//
// Each artifact is written through nb::write_file_atomic (temp + rename),
// so an interrupt or crash during the flush leaves either the complete
// file or no file -- never truncated JSON that `rdtool stats`, Perfetto or
// the CI artifact validators would choke on.  Failures are per-artifact:
// a bad trace path does not stop the metrics or flight dump from landing.
#pragma once

#include <string>

namespace obs {

class FlightRecorder;
class Registry;
class TraceSink;

/// What to publish.  Every sink is optional; a null pointer or empty path
/// skips that artifact.
struct FlushPlan {
  const TraceSink* trace = nullptr;
  std::string trace_path;  // ".jsonl" suffix selects the JSONL form

  const Registry* registry = nullptr;
  std::string metrics_path;

  const FlightRecorder* flight = nullptr;
  std::string flight_path;
};

/// Outcome of one flush, per artifact: written / skipped / failed.
struct FlushResult {
  bool trace_written = false;
  bool metrics_written = false;
  bool flight_written = false;
  /// First failure message ("" when everything requested landed).
  std::string error;

  bool ok() const { return error.empty(); }
};

/// Writes every requested artifact atomically, continuing past individual
/// failures (the result records the first error).  Callers must ensure the
/// sinks are quiescent -- after the fit returned, after the serve workers
/// joined.
FlushResult flush_observability(const FlushPlan& plan);

}  // namespace obs
