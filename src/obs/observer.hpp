// The hook callers hand to core::refine_model (RefineConfig::observer) and
// to the tools: a registry for aggregate metrics, a trace sink for timed
// events, either optional.  A null Observer* means "observe nothing" and
// the instrumented code paths collapse to the uninstrumented ones -- the
// fitted model is byte-identical with and without an observer attached
// (asserted by test_obs and the CI perf-smoke job).
//
// Also home to the sim-level derived statistics that are too expensive for
// the engine's hot loop and instead run over a finished PrefixSimResult:
// the decision-step elimination histogram, the aggregate twin of
// bgp::explain_selection.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "bgp/decision.hpp"
#include "bgp/engine.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace obs {

struct Observer {
  Registry* registry = nullptr;
  TraceSink* trace = nullptr;
};

/// The metric schema core::refine_model records (stable names, DESIGN.md
/// section 9).  Counters prefixed `refine.` summarize the fit; `engine.`
/// counters are accumulated through per-ThreadPool-worker shards inside
/// the simulation sweep.  The `engine.eliminated.<step>` counters -- the
/// decision-step elimination histogram -- are only populated when the
/// attached trace sink records at TraceLevel::kPrefix, because they cost
/// one compare_routes per Adj-RIB-In entry per sweep; everything else is
/// cheap enough to record whenever a registry is attached.
struct RefineMetricSet {
  CounterId iterations;                 // refine.iterations
  CounterId messages;                   // refine.messages
  CounterId routers_added;              // refine.routers_added
  CounterId policies_changed;           // refine.policies_changed
  CounterId filters_relaxed;            // refine.filters_relaxed
  CounterId outcome_converged;          // refine.outcome.converged
  CounterId outcome_oscillating;        // refine.outcome.oscillating
  CounterId outcome_budget_exhausted;   // refine.outcome.budget_exhausted
  CounterId simulate_ns;                // refine.phase.simulate_ns
  CounterId heuristic_ns;               // refine.phase.heuristic_ns
  CounterId validate_ns;                // refine.phase.validate_ns
  CounterId total_ns;                   // refine.phase.total_ns
  CounterId engine_messages;            // engine.messages
  CounterId engine_activations;         // engine.activations
  CounterId engine_rib_inserts;         // engine.rib_inserts
  CounterId engine_rib_replacements;    // engine.rib_replacements
  CounterId engine_withdrawals;         // engine.withdrawals
  CounterId engine_selection_changes;   // engine.selection_changes
  /// engine.eliminated.<decision_step_name>, indexed by DecisionStep.
  std::array<CounterId, bgp::kNumDecisionSteps> eliminated;
  /// engine.messages_per_prefix (bounds: powers of four).
  HistogramId messages_per_prefix;
  /// cache.{hits,misses,invalidations}: shared reachability-cache activity
  /// observed during the fit (deltas, so a shared process-wide cache does
  /// not leak earlier commands' traffic into this fit's numbers).
  CounterId cache_hits;
  CounterId cache_misses;
  CounterId cache_invalidations;
  /// process.peak_rss_bytes -- nb::peak_rss_bytes() sampled once when the
  /// fit finishes (a process high-water mark, so monotone across fits).
  GaugeId peak_rss_bytes;

  /// Defines every metric on `registry` (idempotent: the registry dedups
  /// definitions by name).
  static RefineMetricSet define(Registry& registry);
};

/// Counts, over every router of a finished simulation that selected a best
/// route, each non-best Adj-RIB-In candidate at the decision step that
/// eliminated it versus the best route -- exactly the `lost_at` annotation
/// bgp::explain_selection assigns per candidate, aggregated over the whole
/// sim (test_obs asserts the agreement).  `ids` is the dense-index ->
/// router-id map of the simulated model (bgp::dense_ids or
/// SimContext::ids).  Indexed by static_cast<size_t>(DecisionStep).
std::array<std::uint64_t, bgp::kNumDecisionSteps> elimination_histogram(
    std::span<const std::uint32_t> ids, const bgp::PrefixSimResult& sim);

}  // namespace obs
