#include "obs/registry.hpp"

#include <algorithm>

#include "netbase/check.hpp"
#include "netbase/json.hpp"

namespace obs {

namespace {

/// First bucket whose upper bound admits `value`; bounds.size() == overflow.
std::size_t bucket_of(const std::vector<double>& bounds, double value) {
  const auto it = std::lower_bound(bounds.begin(), bounds.end(), value);
  return static_cast<std::size_t>(it - bounds.begin());
}

}  // namespace

void Shard::observe(HistogramId id, double value) {
  HistogramData& data = histograms_[id.slot];
  ++data.buckets[bucket_of(*bounds_[id.slot], value)];
  ++data.count;
  data.sum += value;
}

CounterId Registry::counter(std::string_view name) {
  nb::MutexLock lock(mutex_);
  for (std::uint32_t i = 0; i < counters_.size(); ++i) {
    if (counters_[i].name == name) return CounterId{i};
  }
  counters_.push_back(CounterDef{std::string(name), 0});
  return CounterId{static_cast<std::uint32_t>(counters_.size() - 1)};
}

HistogramId Registry::histogram(std::string_view name,
                                std::vector<double> bounds) {
  RD_CHECK(std::is_sorted(bounds.begin(), bounds.end()),
           "Registry::histogram bounds must ascend");
  nb::MutexLock lock(mutex_);
  for (std::uint32_t i = 0; i < histograms_.size(); ++i) {
    if (histograms_[i].name == name) return HistogramId{i};
  }
  HistogramDef def;
  def.name = std::string(name);
  def.data.buckets.assign(bounds.size() + 1, 0);
  def.bounds = std::move(bounds);
  histograms_.push_back(std::move(def));
  return HistogramId{static_cast<std::uint32_t>(histograms_.size() - 1)};
}

GaugeId Registry::gauge(std::string_view name) {
  nb::MutexLock lock(mutex_);
  for (std::uint32_t i = 0; i < gauges_.size(); ++i) {
    if (gauges_[i].name == name) return GaugeId{i};
  }
  gauges_.push_back(GaugeDef{std::string(name), 0});
  return GaugeId{static_cast<std::uint32_t>(gauges_.size() - 1)};
}

void Registry::add(CounterId id, std::uint64_t delta) {
  nb::MutexLock lock(mutex_);
  counters_[id.slot].value += delta;
}

void Registry::observe(HistogramId id, double value) {
  nb::MutexLock lock(mutex_);
  HistogramData& data = histograms_[id.slot].data;
  ++data.buckets[bucket_of(histograms_[id.slot].bounds, value)];
  ++data.count;
  data.sum += value;
}

void Registry::set_gauge(GaugeId id, std::uint64_t value) {
  nb::MutexLock lock(mutex_);
  gauges_[id.slot].value = value;
}

Shard Registry::make_shard() const {
  nb::MutexLock lock(mutex_);
  Shard shard;
  shard.counters_.assign(counters_.size(), 0);
  shard.histograms_.resize(histograms_.size());
  shard.bounds_.resize(histograms_.size());
  for (std::size_t i = 0; i < histograms_.size(); ++i) {
    shard.histograms_[i].buckets.assign(histograms_[i].bounds.size() + 1, 0);
    shard.bounds_[i] = &histograms_[i].bounds;
  }
  return shard;
}

void Registry::merge(const Shard& shard) {
  nb::MutexLock lock(mutex_);
  RD_CHECK(shard.counters_.size() == counters_.size() &&
               shard.histograms_.size() == histograms_.size(),
           "Registry::merge: shard from a different definition set");
  for (std::size_t i = 0; i < counters_.size(); ++i)
    counters_[i].value += shard.counters_[i];
  for (std::size_t i = 0; i < histograms_.size(); ++i) {
    HistogramData& into = histograms_[i].data;
    const HistogramData& from = shard.histograms_[i];
    for (std::size_t b = 0; b < into.buckets.size(); ++b)
      into.buckets[b] += from.buckets[b];
    into.count += from.count;
    into.sum += from.sum;
  }
}

std::uint64_t Registry::value(CounterId id) const {
  nb::MutexLock lock(mutex_);
  return counters_[id.slot].value;
}

HistogramData Registry::data(HistogramId id) const {
  nb::MutexLock lock(mutex_);
  return histograms_[id.slot].data;
}

std::uint64_t Registry::counter_value(std::string_view name) const {
  nb::MutexLock lock(mutex_);
  for (const CounterDef& def : counters_) {
    if (def.name == name) return def.value;
  }
  return 0;
}

std::uint64_t Registry::gauge_value(std::string_view name) const {
  nb::MutexLock lock(mutex_);
  for (const GaugeDef& def : gauges_) {
    if (def.name == name) return def.value;
  }
  return 0;
}

std::string Registry::to_json(int indent) const {
  nb::MutexLock lock(mutex_);
  nb::JsonWriter json(indent);
  json.begin_object();
  json.key("counters").begin_object();
  for (const CounterDef& def : counters_) json.key(def.name).value(def.value);
  json.end_object();
  json.key("gauges").begin_object();
  for (const GaugeDef& def : gauges_) json.key(def.name).value(def.value);
  json.end_object();
  json.key("histograms").begin_object();
  for (const HistogramDef& def : histograms_) {
    json.key(def.name).begin_object();
    json.key("bounds").begin_array();
    for (const double bound : def.bounds) json.value(bound);
    json.end_array();
    json.key("buckets").begin_array();
    for (const std::uint64_t bucket : def.data.buckets) json.value(bucket);
    json.end_array();
    json.key("count").value(def.data.count);
    json.key("sum").value(def.data.sum);
    json.end_object();
  }
  json.end_object();
  json.end_object();
  return json.str();
}

ShardGroup::ShardGroup(Registry& registry, unsigned workers)
    : registry_(registry) {
  RD_CHECK(workers > 0, "ShardGroup needs at least one worker");
  shards_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i)
    shards_.push_back(registry.make_shard());
}

ShardGroup::~ShardGroup() {
  for (const Shard& shard : shards_) registry_.merge(shard);
}

}  // namespace obs
