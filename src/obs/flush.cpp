#include "obs/flush.hpp"

#include <sstream>

#include "netbase/fsio.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace obs {

namespace {

void note_error(FlushResult* result, const std::string& message) {
  if (result->error.empty()) result->error = message;
}

}  // namespace

FlushResult flush_observability(const FlushPlan& plan) {
  FlushResult result;
  if (plan.trace != nullptr && !plan.trace_path.empty()) {
    std::ostringstream out;
    if (plan.trace_path.ends_with(".jsonl"))
      plan.trace->write_jsonl(out);
    else
      plan.trace->write_chrome(out);
    std::string error;
    if (nb::write_file_atomic(plan.trace_path, out.str(), &error))
      result.trace_written = true;
    else
      note_error(&result, "trace: " + error);
  }
  if (plan.registry != nullptr && !plan.metrics_path.empty()) {
    std::string error;
    if (nb::write_file_atomic(plan.metrics_path, plan.registry->to_json(2) + "\n",
                              &error))
      result.metrics_written = true;
    else
      note_error(&result, "metrics: " + error);
  }
  if (plan.flight != nullptr && !plan.flight_path.empty()) {
    std::string error;
    if (plan.flight->dump_to_file(plan.flight_path, &error))
      result.flight_written = true;
    else
      note_error(&result, "flight: " + error);
  }
  return result;
}

}  // namespace obs
