#include "obs/trace.hpp"

#include "netbase/json.hpp"

namespace obs {

bool parse_trace_level(std::string_view text, TraceLevel* out) {
  if (text == "off") *out = TraceLevel::kOff;
  else if (text == "phase") *out = TraceLevel::kPhase;
  else if (text == "iteration") *out = TraceLevel::kIteration;
  else if (text == "prefix") *out = TraceLevel::kPrefix;
  else return false;
  return true;
}

const char* trace_level_name(TraceLevel level) {
  switch (level) {
    case TraceLevel::kOff: return "off";
    case TraceLevel::kPhase: return "phase";
    case TraceLevel::kIteration: return "iteration";
    case TraceLevel::kPrefix: return "prefix";
  }
  return "?";
}

TraceSink::TraceSink(TraceLevel level)
    : level_(level), origin_(std::chrono::steady_clock::now()) {}

std::uint64_t TraceSink::now_us() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - origin_)
          .count());
}

void TraceSink::append(Event event) {
  std::lock_guard lock(mutex_);
  events_.push_back(std::move(event));
}

void TraceSink::complete(std::string_view category, std::string_view name,
                         std::uint64_t ts_us, std::uint64_t dur_us,
                         std::uint32_t tid, std::string args_json) {
  append(Event{'X', tid, ts_us, dur_us, std::string(category),
               std::string(name), std::move(args_json)});
}

void TraceSink::counter(std::string_view category, std::string_view name,
                        std::uint64_t ts_us, std::string args_json) {
  append(Event{'C', 0, ts_us, 0, std::string(category), std::string(name),
               std::move(args_json)});
}

void TraceSink::instant(std::string_view category, std::string_view name,
                        std::uint64_t ts_us, std::uint32_t tid,
                        std::string args_json) {
  append(Event{'i', tid, ts_us, 0, std::string(category), std::string(name),
               std::move(args_json)});
}

void TraceSink::name_process(std::string_view name) {
  nb::JsonWriter args;
  args.begin_object().key("name").value(name).end_object();
  append(Event{'M', 0, 0, 0, "__metadata", "process_name", args.str()});
}

void TraceSink::name_thread(std::uint32_t tid, std::string_view name) {
  nb::JsonWriter args;
  args.begin_object().key("name").value(name).end_object();
  append(Event{'M', tid, 0, 0, "__metadata", "thread_name", args.str()});
}

std::size_t TraceSink::size() const {
  std::lock_guard lock(mutex_);
  return events_.size();
}

void TraceSink::write_event(std::ostream& out, const Event& event) {
  nb::JsonWriter json;
  json.begin_object();
  json.key("name").value(event.name);
  json.key("cat").value(event.category);
  const char ph[2] = {event.ph, '\0'};
  json.key("ph").value(ph);
  json.key("ts").value(event.ts_us);
  if (event.ph == 'X') json.key("dur").value(event.dur_us);
  if (event.ph == 'i') json.key("s").value("t");
  json.key("pid").value(std::uint64_t{1});
  json.key("tid").value(std::uint64_t{event.tid});
  if (!event.args_json.empty()) json.key("args").raw(event.args_json);
  json.end_object();
  out << json.str();
}

void TraceSink::write_chrome(std::ostream& out) const {
  std::lock_guard lock(mutex_);
  out << "{\"traceEvents\": [\n";
  for (std::size_t i = 0; i < events_.size(); ++i) {
    write_event(out, events_[i]);
    if (i + 1 < events_.size()) out << ',';
    out << '\n';
  }
  out << "], \"displayTimeUnit\": \"ms\"}\n";
}

void TraceSink::write_jsonl(std::ostream& out) const {
  std::lock_guard lock(mutex_);
  for (const Event& event : events_) {
    write_event(out, event);
    out << '\n';
  }
}

PhaseTimer::PhaseTimer(Registry* registry, CounterId nanos, TraceSink* trace,
                       std::string_view name, std::string args_json)
    : registry_(registry),
      nanos_(nanos),
      trace_(trace != nullptr && trace->enabled(TraceLevel::kPhase) ? trace
                                                                    : nullptr),
      name_(name),
      args_json_(std::move(args_json)),
      start_(std::chrono::steady_clock::now()) {
  if (trace_ != nullptr) start_us_ = trace_->now_us();
}

void PhaseTimer::stop() {
  if (stopped_seconds_ >= 0) return;
  const auto elapsed = std::chrono::steady_clock::now() - start_;
  stopped_seconds_ = std::chrono::duration<double>(elapsed).count();
  if (registry_ != nullptr) {
    registry_->add(nanos_,
                   static_cast<std::uint64_t>(
                       std::chrono::duration_cast<std::chrono::nanoseconds>(
                           elapsed)
                           .count()));
  }
  if (trace_ != nullptr) {
    const std::uint64_t dur_us = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(elapsed)
            .count());
    trace_->complete("phase", name_, start_us_, dur_us, 0,
                     std::move(args_json_));
  }
}

double PhaseTimer::seconds() const {
  if (stopped_seconds_ >= 0) return stopped_seconds_;
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start_)
      .count();
}

}  // namespace obs
