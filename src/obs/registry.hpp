// Runtime metric registry (DESIGN.md section 9): named counters and
// histograms with a hot path that is lock-free by construction.
//
// Model: metrics are *defined* once on a Registry (cheap, mutex-guarded,
// returns a dense handle) and *updated* either directly on the registry
// (serial phases) or through per-worker Shards inside a parallel region.
// A Shard is a plain slice of every defined metric -- uint64 adds and
// bucket bumps with no atomics and no locks -- that exactly one worker
// writes.  A ShardGroup hands `ThreadPool::parallel_for_worker` bodies
// their worker's shard and merges all shards back into the registry in
// ascending worker order when it leaves scope.  Metric totals are
// therefore deterministic for every thread count and every dynamic work
// distribution: counters and bucket counts are sums of uint64s
// (associative and commutative), and histogram sums stay exact as long
// as observed values are integers small enough for double (every
// histogram in this repo observes counts).
//
// The merge is synchronized by the ThreadPool's own batch barrier:
// parallel_for_worker does not return until every body finished, so by
// the time ~ShardGroup reads the shards no worker is writing them.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "netbase/thread_annotations.hpp"

namespace obs {

/// Dense handles into a Registry.  Distinct types so a histogram cannot be
/// bumped as a counter; values are indices assigned in definition order.
struct CounterId {
  std::uint32_t slot = 0;
};
struct HistogramId {
  std::uint32_t slot = 0;
};
struct GaugeId {
  std::uint32_t slot = 0;
};

/// Merged histogram state: `buckets[i]` counts observations <= bounds[i],
/// with one implicit overflow bucket at the end (buckets.size() ==
/// bounds.size() + 1).
struct HistogramData {
  std::vector<std::uint64_t> buckets;
  std::uint64_t count = 0;
  double sum = 0;
};

class Registry;

/// One worker's private slice of every metric defined at creation time.
/// Not thread-safe by design: exactly one thread writes a shard.
class Shard {
 public:
  void add(CounterId id, std::uint64_t delta = 1) {
    counters_[id.slot] += delta;
  }
  void observe(HistogramId id, double value);

 private:
  friend class Registry;
  Shard() = default;

  std::vector<std::uint64_t> counters_;
  std::vector<HistogramData> histograms_;
  /// Borrowed per-histogram bucket bounds (owned by the Registry, whose
  /// definitions are append-only and must outlive the shard).
  std::vector<const std::vector<double>*> bounds_;
};

class Registry {
 public:
  /// Defines (or looks up, by name) a monotonically increasing counter.
  CounterId counter(std::string_view name);
  /// Defines (or looks up) a histogram with the given ascending upper
  /// bucket bounds; an overflow bucket is implicit.  Redefining with
  /// different bounds keeps the first definition.
  HistogramId histogram(std::string_view name, std::vector<double> bounds);
  /// Defines (or looks up) a last-write-wins gauge.  Gauges record point
  /// samples (e.g. process peak RSS) from serial code; they have no shard
  /// representation and no merge semantics.
  GaugeId gauge(std::string_view name);

  /// Direct updates, for serial code.  Thread-safe (mutex); use Shards on
  /// hot parallel paths.
  void add(CounterId id, std::uint64_t delta = 1);
  void observe(HistogramId id, double value);
  void set_gauge(GaugeId id, std::uint64_t value);

  /// Snapshot of a shard sized to the *current* definitions.  Defining
  /// further metrics while shards are outstanding is not supported.
  Shard make_shard() const;
  /// Accumulates a shard's slice into the registry.  Thread-safe, but the
  /// deterministic pattern is ShardGroup's in-order merge after the pool
  /// barrier.
  void merge(const Shard& shard);

  std::uint64_t value(CounterId id) const;
  HistogramData data(HistogramId id) const;
  /// Lookup by name for reports/tests; 0 / empty when never defined.
  std::uint64_t counter_value(std::string_view name) const;
  std::uint64_t gauge_value(std::string_view name) const;

  /// Sorted-by-definition-order JSON export:
  ///   {"counters": {name: value, ...},
  ///    "gauges": {name: value, ...},
  ///    "histograms": {name: {"bounds": [...], "buckets": [...],
  ///                          "count": N, "sum": S}, ...}}
  std::string to_json(int indent = 0) const;

 private:
  struct CounterDef {
    std::string name;
    std::uint64_t value = 0;
  };
  struct HistogramDef {
    std::string name;
    std::vector<double> bounds;
    HistogramData data;
  };
  struct GaugeDef {
    std::string name;
    std::uint64_t value = 0;
  };

  mutable nb::Mutex mutex_;
  std::vector<CounterDef> counters_ RD_GUARDED_BY(mutex_);
  std::vector<HistogramDef> histograms_ RD_GUARDED_BY(mutex_);
  std::vector<GaugeDef> gauges_ RD_GUARDED_BY(mutex_);
};

/// RAII bundle of one shard per pool worker; hand `shard(worker)` out to
/// `parallel_for_worker` bodies.  Destruction merges every shard into the
/// registry in ascending worker order ("merged deterministically at scope
/// exit").  Must not outlive the registry.
class ShardGroup {
 public:
  ShardGroup(Registry& registry, unsigned workers);
  ~ShardGroup();

  ShardGroup(const ShardGroup&) = delete;
  ShardGroup& operator=(const ShardGroup&) = delete;

  Shard& shard(unsigned worker) { return shards_[worker]; }
  unsigned size() const { return static_cast<unsigned>(shards_.size()); }

 private:
  Registry& registry_;
  std::vector<Shard> shards_;
};

}  // namespace obs
