// Structured trace events for the refinement loop and the tools, exported
// as Chrome trace_event JSON (load in Perfetto / chrome://tracing) or as
// JSONL (one event object per line, for ad-hoc grep/jq pipelines).
//
// Levels nest: kPhase emits only the coarse phase spans (simulate /
// heuristic / validate / audit), kIteration adds one span + counter track
// per refinement iteration (filters, rankings, duplicates, active
// prefixes, messages, rib entries), kPrefix adds one span per per-prefix
// simulation (messages, activations, decision-step elimination histogram)
// on a per-worker track.  `rdtool stats` reads the iteration spans back
// into a convergence table, so their arg names are a stable schema
// (documented in DESIGN.md section 9).
//
// Appending events takes a mutex -- the emitters run at iteration/phase
// granularity or serially after a parallel sweep, never per message, so
// the sink is deliberately simple rather than sharded.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "obs/registry.hpp"

namespace obs {

enum class TraceLevel : std::uint8_t {
  kOff = 0,
  kPhase = 1,
  kIteration = 2,
  kPrefix = 3,
};

/// Parses "off" / "phase" / "iteration" / "prefix" (CLI flag values);
/// returns false on anything else.
bool parse_trace_level(std::string_view text, TraceLevel* out);
const char* trace_level_name(TraceLevel level);

class TraceSink {
 public:
  explicit TraceSink(TraceLevel level = TraceLevel::kIteration);

  TraceLevel level() const { return level_; }
  bool enabled(TraceLevel at) const {
    return at != TraceLevel::kOff && level_ >= at;
  }

  /// Microseconds since sink construction (the trace's time origin).
  std::uint64_t now_us() const;

  /// Chrome "X" complete event spanning [ts_us, ts_us + dur_us].
  /// `args_json` is a pre-rendered JSON object ("{...}") or empty.
  void complete(std::string_view category, std::string_view name,
                std::uint64_t ts_us, std::uint64_t dur_us, std::uint32_t tid,
                std::string args_json = {});
  /// Chrome "C" counter event: every numeric arg becomes a series in one
  /// Perfetto counter track named `name`.
  void counter(std::string_view category, std::string_view name,
               std::uint64_t ts_us, std::string args_json);
  /// Chrome "i" instant event (scope "t": thread).
  void instant(std::string_view category, std::string_view name,
               std::uint64_t ts_us, std::uint32_t tid,
               std::string args_json = {});
  /// Chrome "M" metadata: names the process/threads in the Perfetto UI.
  void name_process(std::string_view name);
  void name_thread(std::uint32_t tid, std::string_view name);

  std::size_t size() const;

  /// {"traceEvents": [...], "displayTimeUnit": "ms"} -- the format Perfetto
  /// and chrome://tracing load directly.
  void write_chrome(std::ostream& out) const;
  /// One event object per line, same fields as the Chrome form.
  void write_jsonl(std::ostream& out) const;

 private:
  struct Event {
    char ph = 'i';
    std::uint32_t tid = 0;
    std::uint64_t ts_us = 0;
    std::uint64_t dur_us = 0;  // 'X' only
    std::string category;
    std::string name;
    std::string args_json;  // pre-rendered object or empty
  };

  void append(Event event);
  static void write_event(std::ostream& out, const Event& event);

  TraceLevel level_;
  std::chrono::steady_clock::time_point origin_;
  mutable std::mutex mutex_;
  std::vector<Event> events_;
};

/// RAII phase span: measures a scope, adds its duration in nanoseconds to
/// `nanos` on `registry` (when non-null) and emits a complete event on
/// `trace` (when non-null and enabled at kPhase).  Both sinks optional, so
/// call sites read the same whether observability is attached or not.
class PhaseTimer {
 public:
  PhaseTimer(Registry* registry, CounterId nanos, TraceSink* trace,
             std::string_view name, std::string args_json = {});
  ~PhaseTimer() { stop(); }

  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

  /// Ends the span early (idempotent).
  void stop();
  /// Elapsed (or final, after stop()) wall-clock seconds.
  double seconds() const;

 private:
  Registry* registry_;
  CounterId nanos_;
  TraceSink* trace_;
  std::string name_;
  std::string args_json_;
  std::chrono::steady_clock::time_point start_;
  std::uint64_t start_us_ = 0;
  double stopped_seconds_ = -1;
};

}  // namespace obs
