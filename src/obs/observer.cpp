#include "obs/observer.hpp"

#include <string>

namespace obs {

RefineMetricSet RefineMetricSet::define(Registry& registry) {
  RefineMetricSet m;
  m.iterations = registry.counter("refine.iterations");
  m.messages = registry.counter("refine.messages");
  m.routers_added = registry.counter("refine.routers_added");
  m.policies_changed = registry.counter("refine.policies_changed");
  m.filters_relaxed = registry.counter("refine.filters_relaxed");
  m.outcome_converged = registry.counter("refine.outcome.converged");
  m.outcome_oscillating = registry.counter("refine.outcome.oscillating");
  m.outcome_budget_exhausted =
      registry.counter("refine.outcome.budget_exhausted");
  m.simulate_ns = registry.counter("refine.phase.simulate_ns");
  m.heuristic_ns = registry.counter("refine.phase.heuristic_ns");
  m.validate_ns = registry.counter("refine.phase.validate_ns");
  m.total_ns = registry.counter("refine.phase.total_ns");
  m.engine_messages = registry.counter("engine.messages");
  m.engine_activations = registry.counter("engine.activations");
  m.engine_rib_inserts = registry.counter("engine.rib_inserts");
  m.engine_rib_replacements = registry.counter("engine.rib_replacements");
  m.engine_withdrawals = registry.counter("engine.withdrawals");
  m.engine_selection_changes = registry.counter("engine.selection_changes");
  for (std::size_t step = 0; step < bgp::kNumDecisionSteps; ++step) {
    m.eliminated[step] = registry.counter(
        std::string("engine.eliminated.") +
        bgp::decision_step_name(static_cast<bgp::DecisionStep>(step)));
  }
  m.messages_per_prefix = registry.histogram(
      "engine.messages_per_prefix",
      {4, 16, 64, 256, 1024, 4096, 16384, 65536, 262144});
  m.cache_hits = registry.counter("cache.hits");
  m.cache_misses = registry.counter("cache.misses");
  m.cache_invalidations = registry.counter("cache.invalidations");
  m.peak_rss_bytes = registry.gauge("process.peak_rss_bytes");
  return m;
}

std::array<std::uint64_t, bgp::kNumDecisionSteps> elimination_histogram(
    std::span<const std::uint32_t> ids, const bgp::PrefixSimResult& sim) {
  std::array<std::uint64_t, bgp::kNumDecisionSteps> histogram{};
  for (const bgp::RouterState& state : sim.routers) {
    const bgp::Route* best = state.best_route();
    if (best == nullptr) continue;
    for (const bgp::Route& route : state.rib_in) {
      if (&route == best) continue;
      const bgp::DecisionStep step =
          bgp::compare_routes(route, *best, ids).step;
      ++histogram[static_cast<std::size_t>(step)];
    }
  }
  return histogram;
}

}  // namespace obs
