#include "obs/flight_recorder.hpp"

#include <algorithm>

#include "netbase/fsio.hpp"
#include "netbase/json.hpp"

namespace obs {

namespace {

/// JSON key names for the a/b/c payload words of each event type; nullptr
/// drops the word from the dump.
struct PayloadKeys {
  const char* a = nullptr;
  const char* b = nullptr;
  const char* c = nullptr;
};

PayloadKeys payload_keys(FlightEventType type) {
  switch (type) {
    case FlightEventType::kIterationStart:
      return {"iteration", "active", nullptr};
    case FlightEventType::kShardStart:
      return {"iteration", "shard", "predicted_cost"};
    case FlightEventType::kShardEnd:
      return {"iteration", "shard", "arena_bytes"};
    case FlightEventType::kPrefixFrozen:
      return {"iteration", "origin", "outcome"};
    case FlightEventType::kCheckpoint:
      return {"iteration", "ok", nullptr};
    case FlightEventType::kInterrupt:
      return {"iteration", nullptr, nullptr};
    case FlightEventType::kFault:
      return {"iteration", "kind", nullptr};
    case FlightEventType::kStop:
      return {"stop", "iterations", nullptr};
    case FlightEventType::kServeAccept:
      return {"connection", nullptr, nullptr};
    case FlightEventType::kServeRequest:
      return {"op", "outcome", "micros"};
    case FlightEventType::kServeShed:
      return {"connection", "queue_depth", nullptr};
    case FlightEventType::kServeDrain:
      return {"in_flight", nullptr, nullptr};
  }
  return {};
}

}  // namespace

const char* flight_event_type_name(FlightEventType type) {
  switch (type) {
    case FlightEventType::kIterationStart:
      return "iteration-start";
    case FlightEventType::kShardStart:
      return "shard-start";
    case FlightEventType::kShardEnd:
      return "shard-end";
    case FlightEventType::kPrefixFrozen:
      return "prefix-frozen";
    case FlightEventType::kCheckpoint:
      return "checkpoint";
    case FlightEventType::kInterrupt:
      return "interrupt";
    case FlightEventType::kFault:
      return "fault";
    case FlightEventType::kStop:
      return "stop";
    case FlightEventType::kServeAccept:
      return "serve-accept";
    case FlightEventType::kServeRequest:
      return "serve-request";
    case FlightEventType::kServeShed:
      return "serve-shed";
    case FlightEventType::kServeDrain:
      return "serve-drain";
  }
  return "unknown";
}

FlightRecorder::FlightRecorder(unsigned tracks, std::size_t capacity)
    : num_tracks_(tracks == 0 ? 1 : tracks),
      capacity_(capacity == 0 ? 1 : capacity),
      origin_(std::chrono::steady_clock::now()),
      tracks_(new Track[num_tracks_]),
      labels_(num_tracks_) {
  for (std::size_t t = 0; t < num_tracks_; ++t)
    tracks_[t].ring.resize(capacity_);
}

void FlightRecorder::set_label(unsigned track, std::string label) {
  if (track < num_tracks_) labels_[track] = std::move(label);
}

std::uint64_t FlightRecorder::now_us() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - origin_)
          .count());
}

std::uint64_t FlightRecorder::recorded(unsigned track) const {
  if (track >= num_tracks_) return 0;
  return tracks_[track].count.load(std::memory_order_acquire);
}

std::string FlightRecorder::dump_json(int indent) const {
  nb::JsonWriter json(indent);
  json.begin_object();
  json.key("tool").value("flight-recorder");
  json.key("version").value(1);
  json.key("tracks").value(static_cast<std::uint64_t>(num_tracks_));
  json.key("capacity").value(static_cast<std::uint64_t>(capacity_));
  json.key("rings").begin_array();
  for (std::size_t t = 0; t < num_tracks_; ++t) {
    const Track& track = tracks_[t];
    const std::uint64_t count = track.count.load(std::memory_order_acquire);
    const std::uint64_t kept = std::min<std::uint64_t>(count, capacity_);
    json.begin_object();
    json.key("track").value(static_cast<std::uint64_t>(t));
    json.key("label").value(
        !labels_[t].empty() ? labels_[t]
        : t == 0            ? std::string("serial")
                            : "worker-" + std::to_string(t - 1));
    json.key("recorded").value(count);
    json.key("dropped").value(count - kept);
    json.key("events").begin_array();
    // Oldest kept event first: the ring holds [count - kept, count).
    for (std::uint64_t i = count - kept; i < count; ++i) {
      const FlightEvent& e = track.ring[i % capacity_];
      const PayloadKeys keys = payload_keys(e.type);
      json.begin_object();
      json.key("ts_us").value(e.ts_us);
      json.key("type").value(flight_event_type_name(e.type));
      if (keys.a != nullptr) json.key(keys.a).value(e.a);
      if (keys.b != nullptr) json.key(keys.b).value(e.b);
      if (keys.c != nullptr) json.key(keys.c).value(e.c);
      json.end_object();
    }
    json.end_array();
    json.end_object();
  }
  json.end_array();
  json.end_object();
  return json.str();
}

bool FlightRecorder::dump_to_file(const std::string& path,
                                  std::string* error) const {
  return nb::write_file_atomic(path, dump_json(2) + "\n", error);
}

}  // namespace obs
