// Always-on crash telemetry for the refinement loop: a fixed-capacity
// event ring per track (one serial track plus one per sweep worker),
// recording coarse loop events -- iteration starts, shard executions with
// their predicted cost, prefix freezes, checkpoints, faults -- cheaply
// enough to stay attached by default.  On a degraded or faulted stop
// (R700/R702/R703/R704/A822) core::refine_model dumps the rings to a
// post-mortem JSON so the last moments of a bad run are inspectable even
// when no trace sink was attached.
//
// Lock-free by ownership, not by cleverness: each track is written by
// exactly one thread (ThreadPool::parallel_for_worker guarantees a worker
// slot is owned by one thread per batch; the serial track by the loop
// thread), so record() is a plain slot write plus one release store of the
// monotone event count.  Readers (dump_json) acquire the counts; they run
// after the pool barrier -- or post-mortem, when the workers are long
// quiescent -- so they never race a writer.  A full ring overwrites its
// oldest events: the recorder keeps the most recent `capacity` events per
// track, and the dump reports how many were dropped.
//
// Recording never feeds back into the fit: like the Observer sinks, the
// fitted model is byte-identical with and without a recorder attached.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace obs {

enum class FlightEventType : std::uint8_t {
  kIterationStart,  // a=iteration, b=active prefixes
  kShardStart,      // a=iteration, b=shard, c=predicted cost
  kShardEnd,        // a=iteration, b=shard, c=arena bytes (high-water)
  kPrefixFrozen,    // a=iteration, b=origin, c=PrefixOutcome as int
  kCheckpoint,      // a=iteration, b=ok (1) / failed (0)
  kInterrupt,       // a=iteration
  kFault,           // a=iteration, b=kind (0 sweep, 1 plan, 2 resume)
  kStop,            // a=RefineStop as int, b=iterations
  // Serve-daemon events (serve::Server; DESIGN.md section 15).  Track
  // convention there: 0 = accept loop, 1 = admission (serialized by the
  // queue mutex), 2 + w = worker w.
  kServeAccept,   // a=connection id
  kServeRequest,  // a=op (ServeRequest::Op), b=outcome (ServeOutcome),
                  // c=handler micros
  kServeShed,     // a=connection id, b=queue depth at rejection
  kServeDrain,    // a=in-flight requests when the drain began
};

/// Stable token used in dumps: iteration-start | shard-start | shard-end |
/// prefix-frozen | checkpoint | interrupt | fault | stop | serve-accept |
/// serve-request | serve-shed | serve-drain.
const char* flight_event_type_name(FlightEventType type);

/// One recorded event.  The payload words a/b/c are typed per
/// FlightEventType (see the enum comments); dump_json names them.
struct FlightEvent {
  std::uint64_t ts_us = 0;
  FlightEventType type = FlightEventType::kStop;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::uint64_t c = 0;
};

class FlightRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 1024;

  /// `tracks` single-writer rings of `capacity` events each.  Convention
  /// (refine_model): track 0 is the serial loop, track 1 + w is sweep
  /// worker w, so callers size it 2 + worker count.
  explicit FlightRecorder(unsigned tracks,
                          std::size_t capacity = kDefaultCapacity);

  unsigned tracks() const { return static_cast<unsigned>(num_tracks_); }
  std::size_t capacity() const { return capacity_; }

  /// Overrides the dump label of `track` (default: "serial" / "worker-N",
  /// the refine convention).  Call before any writer starts -- labels are
  /// not synchronized with record().
  void set_label(unsigned track, std::string label);

  /// Microseconds since recorder construction (the dump's time origin).
  std::uint64_t now_us() const;

  /// Appends one event to `track`'s ring, overwriting the oldest when
  /// full.  Must only be called by the track's owning thread; events on an
  /// out-of-range track are dropped (a mis-sized recorder degrades, never
  /// corrupts).
  void record(unsigned track, FlightEventType type, std::uint64_t a = 0,
              std::uint64_t b = 0, std::uint64_t c = 0) {
    if (track >= num_tracks_) return;
    Track& t = tracks_[track];
    const std::uint64_t n = t.count.load(std::memory_order_relaxed);
    t.ring[n % capacity_] = FlightEvent{now_us(), type, a, b, c};
    t.count.store(n + 1, std::memory_order_release);
  }

  /// Events ever recorded on `track` (including overwritten ones).
  std::uint64_t recorded(unsigned track) const;

  /// The post-mortem document: {"tool": "flight-recorder", "version": 1,
  /// "tracks": N, "capacity": C, "rings": [{"track", "label", "recorded",
  /// "dropped", "events": [{"ts_us", "type", <typed payload keys>}]}]}.
  /// Events are emitted oldest first.  Call only while the writers are
  /// quiescent (after a pool barrier / after the fit returned).
  std::string dump_json(int indent = 0) const;

  /// Writes dump_json(2) atomically (tmp file + rename) so a crash during
  /// the dump never leaves a truncated document.  False + `error` on I/O
  /// failure.
  bool dump_to_file(const std::string& path, std::string* error = nullptr) const;

 private:
  struct Track {
    std::vector<FlightEvent> ring;
    std::atomic<std::uint64_t> count{0};
  };

  std::size_t num_tracks_;
  std::size_t capacity_;
  std::chrono::steady_clock::time_point origin_;
  std::unique_ptr<Track[]> tracks_;
  /// Per-track dump labels; "" falls back to the refine convention.
  std::vector<std::string> labels_;
};

}  // namespace obs
