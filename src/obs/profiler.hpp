// Sweep profiler (DESIGN.md section 14): the data model and the arithmetic
// behind `rdtool profile`.
//
// The instrumented shard-executed sweep (core/refine) measures one
// SweepShardSample per executed shard -- which worker ran it, how long it
// took, how many messages it processed, the worker arena's high-water mark,
// and the shard's PREDICTED cost from the static planner
// (analysis/partition).  Each iteration's simulate phase span is the
// parallel section those shards ran inside.  profile_sweep() folds the two
// into a speedup-loss attribution:
//
//   total = parallel + serial            (serial: heuristic/validate/apply)
//   parallel splits, per iteration, into
//     critical path   max_w busy_w       (the slowest worker gates the sweep)
//     imbalance       max_w busy_w - mean_w busy_w
//     overhead        span - max_w busy_w (planning, workset priming,
//                                          scheduling -- time inside the
//                                          simulate span covered by no shard)
//   and per worker into busy (its shard spans) vs idle (span - busy).
//
// Cost-model accuracy is scored as the Spearman rank correlation of
// predicted vs measured shard cost over every sample: the planner only
// needs the ORDER of shard loads to balance them, so rank correlation --
// not Pearson -- is the right score, and a value <= 0 means the static
// model is no better than random for scheduling (the CI perf-smoke job
// gates it > 0).
#pragma once

#include <cstdint>
#include <vector>

namespace obs {

/// One shard execution observed by the instrumented sweep.  Timestamps are
/// on the trace clock (TraceSink::now_us) when a sink is attached, on the
/// fit's own steady clock otherwise -- consistent within one fit either
/// way.
struct SweepShardSample {
  std::size_t iteration = 0;
  std::size_t shard = 0;
  unsigned worker = 0;
  /// Static planner cost (analysis/partition) of this shard's prefixes.
  std::uint64_t predicted_cost = 0;
  std::uint64_t start_us = 0;
  std::uint64_t dur_us = 0;
  std::uint64_t messages = 0;
  std::size_t prefixes = 0;
  /// Worker simulation-arena footprint (bgp::SimMemory::footprint_bytes,
  /// a high-water mark) when the shard finished.
  std::uint64_t arena_bytes = 0;
};

/// One iteration's simulate-phase span: the parallel section the iteration's
/// shard samples ran inside.
struct SweepIterationSpan {
  std::size_t iteration = 0;
  std::uint64_t start_us = 0;
  std::uint64_t dur_us = 0;
};

/// Per-worker timeline rollup.
struct WorkerLane {
  unsigned worker = 0;
  std::uint64_t busy_us = 0;  // sum of this worker's shard spans
  std::uint64_t idle_us = 0;  // parallel-section time not covered by them
  std::uint64_t shards = 0;
};

struct SweepProfile {
  unsigned workers = 0;       // distinct workers observed (lanes.size())
  std::size_t iterations = 0;  // sweep spans seen
  std::size_t shard_samples = 0;
  double total_seconds = 0;
  double parallel_seconds = 0;   // sum of simulate spans
  double serial_seconds = 0;     // total - parallel (clamped >= 0)
  double busy_seconds = 0;       // sum over all shard spans
  double idle_seconds = 0;       // sum over lanes of idle_us
  double imbalance_seconds = 0;  // sum over iterations: max - mean busy
  double overhead_seconds = 0;   // sum over iterations: span - max busy
  /// (serial + busy) / total: the speedup actually realized against the
  /// hypothetical 1-worker run that does the same work back to back.
  double measured_speedup = 1;
  /// Spearman rank correlation of predicted_cost vs dur_us over every
  /// sample; NaN when fewer than 2 samples or either side is constant.
  double cost_rank_correlation = 0;
  std::vector<WorkerLane> lanes;  // ascending worker id
};

/// Spearman rank correlation (average ranks on ties, Pearson over the
/// ranks).  NaN when the sizes differ, fewer than 2 points, or either side
/// is constant.
double rank_correlation(const std::vector<double>& x,
                        const std::vector<double>& y);

/// Folds samples + sweep spans into the attribution above.  `total_seconds`
/// is the whole fit's wall clock (refine phase span); pass 0 to use the
/// parallel time alone (serial_seconds then reads 0).
SweepProfile profile_sweep(const std::vector<SweepShardSample>& samples,
                           const std::vector<SweepIterationSpan>& sweeps,
                           double total_seconds);

}  // namespace obs
