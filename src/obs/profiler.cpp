#include "obs/profiler.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <numeric>

namespace obs {

namespace {

/// Average ranks (1-based; ties share the mean of their rank run).
std::vector<double> average_ranks(const std::vector<double>& values) {
  const std::size_t n = values.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return values[a] < values[b];
  });
  std::vector<double> ranks(n, 0);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && values[order[j + 1]] == values[order[i]]) ++j;
    const double rank = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) ranks[order[k]] = rank;
    i = j + 1;
  }
  return ranks;
}

double pearson(const std::vector<double>& x, const std::vector<double>& y) {
  const std::size_t n = x.size();
  double mx = 0, my = 0;
  for (std::size_t i = 0; i < n; ++i) {
    mx += x[i];
    my += y[i];
  }
  mx /= static_cast<double>(n);
  my /= static_cast<double>(n);
  double sxy = 0, sxx = 0, syy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0 || syy <= 0)
    return std::numeric_limits<double>::quiet_NaN();
  return sxy / std::sqrt(sxx * syy);
}

}  // namespace

double rank_correlation(const std::vector<double>& x,
                        const std::vector<double>& y) {
  if (x.size() != y.size() || x.size() < 2)
    return std::numeric_limits<double>::quiet_NaN();
  return pearson(average_ranks(x), average_ranks(y));
}

SweepProfile profile_sweep(const std::vector<SweepShardSample>& samples,
                           const std::vector<SweepIterationSpan>& sweeps,
                           double total_seconds) {
  SweepProfile profile;
  profile.shard_samples = samples.size();
  profile.iterations = sweeps.size();

  // Lanes: ascending worker id, one per worker that ran at least one shard.
  std::map<unsigned, WorkerLane> lanes;
  for (const SweepShardSample& s : samples) {
    WorkerLane& lane = lanes[s.worker];
    lane.worker = s.worker;
    lane.busy_us += s.dur_us;
    ++lane.shards;
    profile.busy_seconds += static_cast<double>(s.dur_us) / 1e6;
  }
  profile.workers = static_cast<unsigned>(lanes.size());

  // Per-iteration attribution against that iteration's sweep span.
  std::map<std::size_t, std::map<unsigned, std::uint64_t>> busy_by_iter;
  for (const SweepShardSample& s : samples)
    busy_by_iter[s.iteration][s.worker] += s.dur_us;
  for (const SweepIterationSpan& sweep : sweeps) {
    profile.parallel_seconds += static_cast<double>(sweep.dur_us) / 1e6;
    const auto it = busy_by_iter.find(sweep.iteration);
    std::uint64_t max_busy = 0;
    std::uint64_t sum_busy = 0;
    if (it != busy_by_iter.end()) {
      for (const auto& [worker, busy] : it->second) {
        max_busy = std::max(max_busy, busy);
        sum_busy += busy;
      }
    }
    const double workers =
        profile.workers > 0 ? static_cast<double>(profile.workers) : 1.0;
    const double mean_busy = static_cast<double>(sum_busy) / workers;
    profile.imbalance_seconds +=
        std::max(0.0, (static_cast<double>(max_busy) - mean_busy) / 1e6);
    if (sweep.dur_us > max_busy)
      profile.overhead_seconds +=
          static_cast<double>(sweep.dur_us - max_busy) / 1e6;
    // Idle per lane: every observed worker not busy for the whole span.
    for (auto& [worker, lane] : lanes) {
      std::uint64_t busy = 0;
      if (it != busy_by_iter.end()) {
        const auto b = it->second.find(worker);
        if (b != it->second.end()) busy = b->second;
      }
      if (sweep.dur_us > busy) lane.idle_us += sweep.dur_us - busy;
    }
  }

  profile.total_seconds =
      total_seconds > 0 ? total_seconds : profile.parallel_seconds;
  profile.serial_seconds =
      std::max(0.0, profile.total_seconds - profile.parallel_seconds);
  for (const auto& [worker, lane] : lanes) {
    profile.lanes.push_back(lane);
    profile.idle_seconds += static_cast<double>(lane.idle_us) / 1e6;
  }
  if (profile.total_seconds > 0) {
    profile.measured_speedup =
        (profile.serial_seconds + profile.busy_seconds) /
        profile.total_seconds;
  }

  std::vector<double> predicted, measured;
  predicted.reserve(samples.size());
  measured.reserve(samples.size());
  for (const SweepShardSample& s : samples) {
    predicted.push_back(static_cast<double>(s.predicted_cost));
    measured.push_back(static_cast<double>(s.dur_us));
  }
  profile.cost_rank_correlation = rank_correlation(predicted, measured);
  return profile;
}

}  // namespace obs
