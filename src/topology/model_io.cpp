#include "topology/model_io.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>

#include "netbase/strings.hpp"

namespace topo {
namespace {

const char* class_name(NeighborClass cls) {
  switch (cls) {
    case NeighborClass::kCustomer:
      return "customer";
    case NeighborClass::kPeer:
      return "peer";
    case NeighborClass::kProvider:
      return "provider";
    case NeighborClass::kUnknown:
      return "unknown";
  }
  return "unknown";
}

std::optional<NeighborClass> class_from(std::string_view name) {
  if (name == "customer") return NeighborClass::kCustomer;
  if (name == "peer") return NeighborClass::kPeer;
  if (name == "provider") return NeighborClass::kProvider;
  if (name == "unknown") return NeighborClass::kUnknown;
  return std::nullopt;
}

std::optional<RouterId> parse_router(std::string_view text) {
  auto dot = text.find('.');
  if (dot == std::string_view::npos) return std::nullopt;
  auto asn = nb::parse_u64(text.substr(0, dot));
  auto index = nb::parse_u64(text.substr(dot + 1));
  if (!asn || !index || *asn > 0xffff || *index > 0xffff)
    return std::nullopt;
  return RouterId{static_cast<Asn>(*asn),
                  static_cast<std::uint16_t>(*index)};
}

}  // namespace

void write_model(std::ostream& out, const Model& model) {
  out << "model v1\n";
  out << "# routers=" << model.num_routers()
      << " sessions=" << model.num_sessions() << "\n";

  std::vector<RouterId> routers;
  routers.reserve(model.num_routers());
  for (Model::Dense r = 0; r < model.num_routers(); ++r)
    routers.push_back(model.router_id(r));
  std::sort(routers.begin(), routers.end());
  for (RouterId id : routers) out << "router " << id.str() << "\n";

  std::vector<std::pair<RouterId, RouterId>> sessions;
  for (Model::Dense r = 0; r < model.num_routers(); ++r) {
    for (Model::Dense peer : model.peers(r)) {
      RouterId a = model.router_id(r), b = model.router_id(peer);
      if (a < b) sessions.emplace_back(a, b);
    }
  }
  std::sort(sessions.begin(), sessions.end());
  for (auto& [a, b] : sessions)
    out << "session " << a.str() << " " << b.str() << "\n";

  for (auto& [receiver, sender, cost] : model.igp_costs())
    out << "igp " << receiver.str() << " " << sender.str() << " " << cost
        << "\n";

  for (auto& [pair, cls] : model.neighbor_classes()) {
    if (cls == NeighborClass::kUnknown) continue;
    out << "class " << pair.first << " " << pair.second << " "
        << class_name(cls) << "\n";
  }

  for (auto& [prefix, policy] : model.prefix_policies()) {
    std::vector<std::pair<std::uint64_t, ExportFilter>> filters(
        policy.filters.begin(), policy.filters.end());
    std::sort(filters.begin(), filters.end(),
              [](auto& x, auto& y) { return x.first < y.first; });
    for (auto& [key, filter] : filters) {
      RouterId from = RouterId::from_value(static_cast<std::uint32_t>(key >> 32));
      RouterId to = RouterId::from_value(static_cast<std::uint32_t>(key));
      out << "filter " << prefix.str() << " " << from.str() << " "
          << to.str() << " ";
      if (filter.deny_below_len == ExportFilter::kDenyAll) {
        out << "all";
      } else {
        out << filter.deny_below_len;
      }
      if (filter.owner_target.valid())
        out << " owner " << filter.owner_target.str();
      out << "\n";
    }
    std::vector<std::pair<std::uint32_t, RankingRule>> rankings(
        policy.rankings.begin(), policy.rankings.end());
    std::sort(rankings.begin(), rankings.end(),
              [](auto& x, auto& y) { return x.first < y.first; });
    for (auto& [router, rule] : rankings) {
      out << "ranking " << prefix.str() << " "
          << RouterId::from_value(router).str() << " "
          << rule.preferred_neighbor << "\n";
    }
    std::vector<std::pair<std::uint64_t, std::uint32_t>> lps(
        policy.lp_overrides.begin(), policy.lp_overrides.end());
    std::sort(lps.begin(), lps.end(),
              [](auto& x, auto& y) { return x.first < y.first; });
    for (auto& [key, lp] : lps) {
      RouterId router = RouterId::from_value(static_cast<std::uint32_t>(key >> 32));
      Asn neighbor = static_cast<Asn>(key & 0xffffffffu);
      out << "lp-override " << prefix.str() << " " << router.str() << " "
          << neighbor << " " << lp << "\n";
    }
    std::vector<std::uint64_t> allows(policy.export_allows.begin(),
                                      policy.export_allows.end());
    std::sort(allows.begin(), allows.end());
    for (std::uint64_t key : allows) {
      RouterId from = RouterId::from_value(static_cast<std::uint32_t>(key >> 32));
      RouterId to = RouterId::from_value(static_cast<std::uint32_t>(key));
      out << "export-allow " << prefix.str() << " " << from.str() << " "
          << to.str() << "\n";
    }
  }
}

std::string model_to_string(const Model& model) {
  std::ostringstream out;
  write_model(out, model);
  return out.str();
}

namespace {

bool fail(std::string* error, const std::string& message, std::size_t line) {
  if (error != nullptr)
    *error = "line " + std::to_string(line) + ": " + message;
  return false;
}

bool parse_into(std::istream& in, Model& model, std::string* error) {
  std::string line;
  std::size_t line_number = 0;
  bool saw_header = false;
  while (std::getline(in, line)) {
    ++line_number;
    std::string_view text = nb::trim(line);
    if (text.empty() || text[0] == '#') continue;
    auto fields = nb::split_ws(text);
    const std::string_view directive = fields[0];

    if (directive == "model") {
      if (fields.size() != 2 || fields[1] != "v1")
        return fail(error, "unsupported model version", line_number);
      saw_header = true;
      continue;
    }
    if (!saw_header)
      return fail(error, "missing 'model v1' header", line_number);

    if (directive == "router") {
      auto id = fields.size() == 2 ? parse_router(fields[1]) : std::nullopt;
      if (!id) return fail(error, "malformed router", line_number);
      // Routers must be declared in per-AS index order.
      RouterId created = model.add_router(id->asn());
      if (created != *id)
        return fail(error, "router indices must be dense per AS",
                    line_number);
    } else if (directive == "session") {
      auto a = fields.size() == 3 ? parse_router(fields[1]) : std::nullopt;
      auto b = fields.size() == 3 ? parse_router(fields[2]) : std::nullopt;
      if (!a || !b || !model.has_router(*a) || !model.has_router(*b))
        return fail(error, "malformed session", line_number);
      model.add_session(*a, *b);
    } else if (directive == "igp") {
      auto receiver = fields.size() == 4 ? parse_router(fields[1])
                                         : std::nullopt;
      auto sender = fields.size() == 4 ? parse_router(fields[2])
                                       : std::nullopt;
      auto cost = fields.size() == 4 ? nb::parse_u64(fields[3])
                                     : std::nullopt;
      if (!receiver || !sender || !cost || !model.has_router(*receiver) ||
          !model.has_router(*sender))
        return fail(error, "malformed igp", line_number);
      if (*cost > 0xffffffffu)
        return fail(error, "igp cost out of range", line_number);
      model.set_igp_cost(*receiver, *sender,
                         static_cast<std::uint32_t>(*cost));
    } else if (directive == "class") {
      auto of = fields.size() == 4 ? nb::parse_u64(fields[1]) : std::nullopt;
      auto neighbor =
          fields.size() == 4 ? nb::parse_u64(fields[2]) : std::nullopt;
      auto cls = fields.size() == 4 ? class_from(fields[3]) : std::nullopt;
      if (!of || !neighbor || !cls)
        return fail(error, "malformed class", line_number);
      if (*of >= nb::kInvalidAsn || *neighbor >= nb::kInvalidAsn)
        return fail(error, "class AS number out of range", line_number);
      model.set_neighbor_class(static_cast<Asn>(*of),
                               static_cast<Asn>(*neighbor), *cls);
    } else if (directive == "filter") {
      if (fields.size() != 5 && fields.size() != 7)
        return fail(error, "malformed filter", line_number);
      auto prefix = nb::Prefix::parse(fields[1]);
      auto from = parse_router(fields[2]);
      auto to = parse_router(fields[3]);
      std::uint32_t deny = 0;
      if (fields[4] == "all") {
        deny = ExportFilter::kDenyAll;
      } else if (auto value = nb::parse_u64(fields[4]); value) {
        // kDenyAll is reserved for the "all" keyword; larger values would
        // silently truncate through the uint32_t cast.
        if (*value >= ExportFilter::kDenyAll)
          return fail(error, "filter threshold out of range", line_number);
        deny = static_cast<std::uint32_t>(*value);
      } else {
        return fail(error, "malformed filter threshold", line_number);
      }
      RouterId owner = nb::kInvalidRouterId;
      if (fields.size() == 7) {
        if (fields[5] != "owner")
          return fail(error, "malformed filter owner", line_number);
        auto parsed = parse_router(fields[6]);
        if (!parsed) return fail(error, "malformed filter owner", line_number);
        owner = *parsed;
      }
      if (!prefix || !from || !to)
        return fail(error, "malformed filter", line_number);
      model.set_export_filter(*from, *to, *prefix, deny, owner);
    } else if (directive == "ranking") {
      auto prefix =
          fields.size() == 4 ? nb::Prefix::parse(fields[1]) : std::nullopt;
      auto router = fields.size() == 4 ? parse_router(fields[2])
                                       : std::nullopt;
      auto preferred =
          fields.size() == 4 ? nb::parse_u64(fields[3]) : std::nullopt;
      if (!prefix || !router || !preferred)
        return fail(error, "malformed ranking", line_number);
      if (*preferred >= nb::kInvalidAsn)
        return fail(error, "ranking AS number out of range", line_number);
      model.set_ranking(*router, *prefix, static_cast<Asn>(*preferred));
    } else if (directive == "lp-override") {
      auto prefix =
          fields.size() == 5 ? nb::Prefix::parse(fields[1]) : std::nullopt;
      auto router = fields.size() == 5 ? parse_router(fields[2])
                                       : std::nullopt;
      auto neighbor =
          fields.size() == 5 ? nb::parse_u64(fields[3]) : std::nullopt;
      auto lp = fields.size() == 5 ? nb::parse_u64(fields[4]) : std::nullopt;
      if (!prefix || !router || !neighbor || !lp)
        return fail(error, "malformed lp-override", line_number);
      if (*neighbor >= nb::kInvalidAsn || *lp > 0xffffffffu)
        return fail(error, "lp-override value out of range", line_number);
      model.set_lp_override(*router, *prefix, static_cast<Asn>(*neighbor),
                            static_cast<std::uint32_t>(*lp));
    } else if (directive == "export-allow") {
      auto prefix =
          fields.size() == 4 ? nb::Prefix::parse(fields[1]) : std::nullopt;
      auto from = fields.size() == 4 ? parse_router(fields[2]) : std::nullopt;
      auto to = fields.size() == 4 ? parse_router(fields[3]) : std::nullopt;
      if (!prefix || !from || !to)
        return fail(error, "malformed export-allow", line_number);
      model.set_export_allow(*from, *to, *prefix);
    } else {
      return fail(error, "unknown directive", line_number);
    }
  }
  if (!saw_header) return fail(error, "empty input", line_number);
  return true;
}

}  // namespace

std::optional<Model> read_model(std::istream& in, std::string* error) {
  Model model;
  if (!parse_into(in, model, error)) return std::nullopt;
  return model;
}

std::optional<Model> model_from_string(const std::string& text,
                                       std::string* error) {
  std::istringstream in(text);
  return read_model(in, error);
}

// ---- refinement checkpoints -------------------------------------------------

namespace {

std::string hex16(std::uint64_t value) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[value & 0xf];
    value >>= 4;
  }
  return out;
}

std::optional<std::uint64_t> parse_hex64(std::string_view text) {
  if (text.empty() || text.size() > 16) return std::nullopt;
  std::uint64_t value = 0;
  for (const char c : text) {
    value <<= 4;
    if (c >= '0' && c <= '9') value |= static_cast<std::uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f') value |= static_cast<std::uint64_t>(c - 'a' + 10);
    else return std::nullopt;
  }
  return value;
}

bool known_prefix_state(std::string_view state) {
  return state == "active" || state == "converged" ||
         state == "oscillating" || state == "budget-exhausted";
}

}  // namespace

void write_refine_checkpoint(std::ostream& out, const RefineCheckpoint& ck) {
  out << "refine-checkpoint v1\n";
  out << "iteration " << ck.iteration << "\n";
  out << "dataset-hash " << hex16(ck.dataset_hash) << "\n";
  out << "messages " << ck.messages_simulated << "\n";
  out << "edits " << ck.routers_added << " " << ck.policies_changed << " "
      << ck.filters_relaxed << "\n";
  for (const PrefixCheckpointState& p : ck.prefixes) {
    out << "prefix " << p.origin << " " << p.state << " " << p.matched << " "
        << p.paths_total << " " << p.active_iterations << " "
        << p.frozen_iteration << " " << p.best_matched << " " << p.hits << " ";
    if (p.freeze_pending) {
      out << p.freeze_countdown;
    } else {
      out << "-";
    }
    out << "\n";
    if (!p.fingerprints.empty()) {
      out << "fp " << p.origin;
      for (std::uint64_t fp : p.fingerprints) out << " " << hex16(fp);
      out << "\n";
    }
  }
  write_model(out, ck.model);
  // Explicit trailer: the model section has no length prefix, so without it
  // a truncation that drops trailing policy lines would still parse -- as a
  // silently wrong model.  The trailer makes every proper-prefix cut of a
  // checkpoint file a detectable error.
  out << "end refine-checkpoint\n";
}

std::optional<RefineCheckpoint> read_refine_checkpoint(std::istream& in,
                                                       std::string* error) {
  RefineCheckpoint ck;
  std::string line;
  std::size_t line_number = 0;
  bool saw_header = false;
  bool saw_iteration = false;
  bool saw_hash = false;
  auto bad = [&](const std::string& message) {
    fail(error, message, line_number);
    return std::optional<RefineCheckpoint>();
  };
  while (std::getline(in, line)) {
    ++line_number;
    std::string_view text = nb::trim(line);
    if (text.empty() || text[0] == '#') continue;
    auto fields = nb::split_ws(text);
    const std::string_view directive = fields[0];

    if (directive == "refine-checkpoint") {
      if (fields.size() != 2 || fields[1] != "v1")
        return bad("unsupported checkpoint version");
      saw_header = true;
      continue;
    }
    if (!saw_header)
      return bad("missing 'refine-checkpoint v1' header");

    if (directive == "iteration") {
      auto value = fields.size() == 2 ? nb::parse_u64(fields[1]) : std::nullopt;
      if (!value) return bad("malformed iteration");
      ck.iteration = static_cast<std::size_t>(*value);
      saw_iteration = true;
    } else if (directive == "dataset-hash") {
      auto value = fields.size() == 2 ? parse_hex64(fields[1]) : std::nullopt;
      if (!value || fields[1].size() != 16)
        return bad("malformed dataset-hash");
      ck.dataset_hash = *value;
      saw_hash = true;
    } else if (directive == "messages") {
      auto value = fields.size() == 2 ? nb::parse_u64(fields[1]) : std::nullopt;
      if (!value) return bad("malformed messages");
      ck.messages_simulated = *value;
    } else if (directive == "edits") {
      if (fields.size() != 4) return bad("edits needs 3 fields");
      auto routers = nb::parse_u64(fields[1]);
      auto policies = nb::parse_u64(fields[2]);
      auto filters = nb::parse_u64(fields[3]);
      if (!routers || !policies || !filters) return bad("malformed edits");
      ck.routers_added = static_cast<std::size_t>(*routers);
      ck.policies_changed = static_cast<std::size_t>(*policies);
      ck.filters_relaxed = static_cast<std::size_t>(*filters);
    } else if (directive == "prefix") {
      if (fields.size() != 10) return bad("prefix needs 9 fields");
      auto origin = nb::parse_u64(fields[1]);
      if (!origin || *origin >= nb::kInvalidAsn)
        return bad("malformed prefix origin");
      if (!known_prefix_state(fields[2]))
        return bad("unknown prefix state");
      auto matched = nb::parse_u64(fields[3]);
      auto paths = nb::parse_u64(fields[4]);
      auto active = nb::parse_u64(fields[5]);
      auto frozen = nb::parse_u64(fields[6]);
      auto best = nb::parse_u64(fields[7]);
      auto hits = nb::parse_u64(fields[8]);
      if (!matched || !paths || !active || !frozen || !best || !hits)
        return bad("malformed prefix state");
      PrefixCheckpointState p;
      p.origin = static_cast<nb::Asn>(*origin);
      p.state = std::string(fields[2]);
      p.matched = static_cast<std::size_t>(*matched);
      p.paths_total = static_cast<std::size_t>(*paths);
      p.active_iterations = static_cast<std::size_t>(*active);
      p.frozen_iteration = static_cast<std::size_t>(*frozen);
      p.best_matched = static_cast<std::size_t>(*best);
      p.hits = static_cast<std::size_t>(*hits);
      if (fields[9] == "-") {
        p.freeze_pending = false;
      } else {
        auto countdown = nb::parse_u64(fields[9]);
        if (!countdown) return bad("malformed freeze countdown");
        p.freeze_pending = true;
        p.freeze_countdown = static_cast<std::size_t>(*countdown);
      }
      if (p.matched > p.paths_total)
        return bad("matched exceeds path count");
      for (const PrefixCheckpointState& prev : ck.prefixes) {
        if (prev.origin == p.origin)
          return bad("duplicate prefix origin");
      }
      ck.prefixes.push_back(std::move(p));
    } else if (directive == "fp") {
      if (fields.size() < 3) return bad("fp needs at least 2 fields");
      auto origin = nb::parse_u64(fields[1]);
      if (!origin) return bad("malformed fp origin");
      PrefixCheckpointState* target = nullptr;
      for (PrefixCheckpointState& p : ck.prefixes) {
        if (p.origin == static_cast<nb::Asn>(*origin)) target = &p;
      }
      if (target == nullptr)
        return bad("fp references undeclared prefix");
      if (!target->fingerprints.empty())
        return bad("duplicate fp line for prefix");
      for (std::size_t i = 2; i < fields.size(); ++i) {
        auto fp = parse_hex64(fields[i]);
        if (!fp || fields[i].size() != 16)
          return bad("malformed fingerprint");
        target->fingerprints.push_back(*fp);
      }
    } else if (directive == "model") {
      // The rest of the stream (this line included) is a standard model
      // section; hand it to the model parser and remap error lines to
      // absolute positions in the checkpoint file.
      std::ostringstream rest;
      rest << line << "\n" << in.rdbuf();
      std::string model_text = std::move(rest).str();
      // The trailer must be the final line, exactly; anything else means
      // the file was cut off inside the model section.
      constexpr std::string_view kTrailer = "end refine-checkpoint\n";
      if (model_text.size() < kTrailer.size() ||
          std::string_view(model_text).substr(model_text.size() -
                                              kTrailer.size()) != kTrailer)
        return bad("checkpoint truncated in model section (missing trailer)");
      model_text.resize(model_text.size() - kTrailer.size());
      std::string model_error;
      auto model = model_from_string(model_text, &model_error);
      if (!model) {
        std::size_t relative = 0;
        if (model_error.rfind("line ", 0) == 0) {
          auto end = model_error.find(':');
          auto value = end == std::string::npos
                           ? std::nullopt
                           : nb::parse_u64(std::string_view(model_error)
                                               .substr(5, end - 5));
          if (value) {
            relative = static_cast<std::size_t>(*value);
            model_error = "model section " + model_error.substr(0, 5) +
                          std::to_string(line_number - 1 + relative) +
                          model_error.substr(end);
          }
        }
        if (relative == 0) model_error = "model section: " + model_error;
        if (error != nullptr) *error = model_error;
        return std::nullopt;
      }
      if (!saw_iteration || !saw_hash)
        return bad("checkpoint missing iteration or dataset-hash");
      ck.model = std::move(*model);
      return ck;
    } else {
      return bad("unknown directive");
    }
  }
  if (!saw_header) return bad("empty input");
  return bad("checkpoint truncated before model section");
}

bool save_refine_checkpoint(const std::string& path,
                            const RefineCheckpoint& checkpoint,
                            std::string* error) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) {
      if (error != nullptr) *error = "cannot open " + tmp + " for writing";
      return false;
    }
    write_refine_checkpoint(out, checkpoint);
    out.flush();
    if (!out) {
      out.close();
      std::remove(tmp.c_str());
      if (error != nullptr) *error = "short write to " + tmp;
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    if (error != nullptr) *error = "cannot rename " + tmp + " to " + path;
    return false;
  }
  return true;
}

std::optional<RefineCheckpoint> load_refine_checkpoint(const std::string& path,
                                                       std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return std::nullopt;
  }
  return read_refine_checkpoint(in, error);
}

}  // namespace topo
