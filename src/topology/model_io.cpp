#include "topology/model_io.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "netbase/strings.hpp"

namespace topo {
namespace {

const char* class_name(NeighborClass cls) {
  switch (cls) {
    case NeighborClass::kCustomer:
      return "customer";
    case NeighborClass::kPeer:
      return "peer";
    case NeighborClass::kProvider:
      return "provider";
    case NeighborClass::kUnknown:
      return "unknown";
  }
  return "unknown";
}

std::optional<NeighborClass> class_from(std::string_view name) {
  if (name == "customer") return NeighborClass::kCustomer;
  if (name == "peer") return NeighborClass::kPeer;
  if (name == "provider") return NeighborClass::kProvider;
  if (name == "unknown") return NeighborClass::kUnknown;
  return std::nullopt;
}

std::optional<RouterId> parse_router(std::string_view text) {
  auto dot = text.find('.');
  if (dot == std::string_view::npos) return std::nullopt;
  auto asn = nb::parse_u64(text.substr(0, dot));
  auto index = nb::parse_u64(text.substr(dot + 1));
  if (!asn || !index || *asn > 0xffff || *index > 0xffff)
    return std::nullopt;
  return RouterId{static_cast<Asn>(*asn),
                  static_cast<std::uint16_t>(*index)};
}

}  // namespace

void write_model(std::ostream& out, const Model& model) {
  out << "model v1\n";
  out << "# routers=" << model.num_routers()
      << " sessions=" << model.num_sessions() << "\n";

  std::vector<RouterId> routers;
  routers.reserve(model.num_routers());
  for (Model::Dense r = 0; r < model.num_routers(); ++r)
    routers.push_back(model.router_id(r));
  std::sort(routers.begin(), routers.end());
  for (RouterId id : routers) out << "router " << id.str() << "\n";

  std::vector<std::pair<RouterId, RouterId>> sessions;
  for (Model::Dense r = 0; r < model.num_routers(); ++r) {
    for (Model::Dense peer : model.peers(r)) {
      RouterId a = model.router_id(r), b = model.router_id(peer);
      if (a < b) sessions.emplace_back(a, b);
    }
  }
  std::sort(sessions.begin(), sessions.end());
  for (auto& [a, b] : sessions)
    out << "session " << a.str() << " " << b.str() << "\n";

  for (auto& [receiver, sender, cost] : model.igp_costs())
    out << "igp " << receiver.str() << " " << sender.str() << " " << cost
        << "\n";

  for (auto& [pair, cls] : model.neighbor_classes()) {
    if (cls == NeighborClass::kUnknown) continue;
    out << "class " << pair.first << " " << pair.second << " "
        << class_name(cls) << "\n";
  }

  for (auto& [prefix, policy] : model.prefix_policies()) {
    std::vector<std::pair<std::uint64_t, ExportFilter>> filters(
        policy.filters.begin(), policy.filters.end());
    std::sort(filters.begin(), filters.end(),
              [](auto& x, auto& y) { return x.first < y.first; });
    for (auto& [key, filter] : filters) {
      RouterId from = RouterId::from_value(static_cast<std::uint32_t>(key >> 32));
      RouterId to = RouterId::from_value(static_cast<std::uint32_t>(key));
      out << "filter " << prefix.str() << " " << from.str() << " "
          << to.str() << " ";
      if (filter.deny_below_len == ExportFilter::kDenyAll) {
        out << "all";
      } else {
        out << filter.deny_below_len;
      }
      if (filter.owner_target.valid())
        out << " owner " << filter.owner_target.str();
      out << "\n";
    }
    std::vector<std::pair<std::uint32_t, RankingRule>> rankings(
        policy.rankings.begin(), policy.rankings.end());
    std::sort(rankings.begin(), rankings.end(),
              [](auto& x, auto& y) { return x.first < y.first; });
    for (auto& [router, rule] : rankings) {
      out << "ranking " << prefix.str() << " "
          << RouterId::from_value(router).str() << " "
          << rule.preferred_neighbor << "\n";
    }
    std::vector<std::pair<std::uint64_t, std::uint32_t>> lps(
        policy.lp_overrides.begin(), policy.lp_overrides.end());
    std::sort(lps.begin(), lps.end(),
              [](auto& x, auto& y) { return x.first < y.first; });
    for (auto& [key, lp] : lps) {
      RouterId router = RouterId::from_value(static_cast<std::uint32_t>(key >> 32));
      Asn neighbor = static_cast<Asn>(key & 0xffffffffu);
      out << "lp-override " << prefix.str() << " " << router.str() << " "
          << neighbor << " " << lp << "\n";
    }
    std::vector<std::uint64_t> allows(policy.export_allows.begin(),
                                      policy.export_allows.end());
    std::sort(allows.begin(), allows.end());
    for (std::uint64_t key : allows) {
      RouterId from = RouterId::from_value(static_cast<std::uint32_t>(key >> 32));
      RouterId to = RouterId::from_value(static_cast<std::uint32_t>(key));
      out << "export-allow " << prefix.str() << " " << from.str() << " "
          << to.str() << "\n";
    }
  }
}

std::string model_to_string(const Model& model) {
  std::ostringstream out;
  write_model(out, model);
  return out.str();
}

namespace {

bool fail(std::string* error, const std::string& message, std::size_t line) {
  if (error != nullptr)
    *error = "line " + std::to_string(line) + ": " + message;
  return false;
}

bool parse_into(std::istream& in, Model& model, std::string* error) {
  std::string line;
  std::size_t line_number = 0;
  bool saw_header = false;
  while (std::getline(in, line)) {
    ++line_number;
    std::string_view text = nb::trim(line);
    if (text.empty() || text[0] == '#') continue;
    auto fields = nb::split_ws(text);
    const std::string_view directive = fields[0];

    if (directive == "model") {
      if (fields.size() != 2 || fields[1] != "v1")
        return fail(error, "unsupported model version", line_number);
      saw_header = true;
      continue;
    }
    if (!saw_header)
      return fail(error, "missing 'model v1' header", line_number);

    if (directive == "router") {
      auto id = fields.size() == 2 ? parse_router(fields[1]) : std::nullopt;
      if (!id) return fail(error, "malformed router", line_number);
      // Routers must be declared in per-AS index order.
      RouterId created = model.add_router(id->asn());
      if (created != *id)
        return fail(error, "router indices must be dense per AS",
                    line_number);
    } else if (directive == "session") {
      auto a = fields.size() == 3 ? parse_router(fields[1]) : std::nullopt;
      auto b = fields.size() == 3 ? parse_router(fields[2]) : std::nullopt;
      if (!a || !b || !model.has_router(*a) || !model.has_router(*b))
        return fail(error, "malformed session", line_number);
      model.add_session(*a, *b);
    } else if (directive == "igp") {
      auto receiver = fields.size() == 4 ? parse_router(fields[1])
                                         : std::nullopt;
      auto sender = fields.size() == 4 ? parse_router(fields[2])
                                       : std::nullopt;
      auto cost = fields.size() == 4 ? nb::parse_u64(fields[3])
                                     : std::nullopt;
      if (!receiver || !sender || !cost || !model.has_router(*receiver) ||
          !model.has_router(*sender))
        return fail(error, "malformed igp", line_number);
      model.set_igp_cost(*receiver, *sender,
                         static_cast<std::uint32_t>(*cost));
    } else if (directive == "class") {
      auto of = fields.size() == 4 ? nb::parse_u64(fields[1]) : std::nullopt;
      auto neighbor =
          fields.size() == 4 ? nb::parse_u64(fields[2]) : std::nullopt;
      auto cls = fields.size() == 4 ? class_from(fields[3]) : std::nullopt;
      if (!of || !neighbor || !cls)
        return fail(error, "malformed class", line_number);
      model.set_neighbor_class(static_cast<Asn>(*of),
                               static_cast<Asn>(*neighbor), *cls);
    } else if (directive == "filter") {
      if (fields.size() != 5 && fields.size() != 7)
        return fail(error, "malformed filter", line_number);
      auto prefix = nb::Prefix::parse(fields[1]);
      auto from = parse_router(fields[2]);
      auto to = parse_router(fields[3]);
      std::uint32_t deny = 0;
      if (fields[4] == "all") {
        deny = ExportFilter::kDenyAll;
      } else if (auto value = nb::parse_u64(fields[4]); value) {
        deny = static_cast<std::uint32_t>(*value);
      } else {
        return fail(error, "malformed filter threshold", line_number);
      }
      RouterId owner = nb::kInvalidRouterId;
      if (fields.size() == 7) {
        if (fields[5] != "owner")
          return fail(error, "malformed filter owner", line_number);
        auto parsed = parse_router(fields[6]);
        if (!parsed) return fail(error, "malformed filter owner", line_number);
        owner = *parsed;
      }
      if (!prefix || !from || !to)
        return fail(error, "malformed filter", line_number);
      model.set_export_filter(*from, *to, *prefix, deny, owner);
    } else if (directive == "ranking") {
      auto prefix =
          fields.size() == 4 ? nb::Prefix::parse(fields[1]) : std::nullopt;
      auto router = fields.size() == 4 ? parse_router(fields[2])
                                       : std::nullopt;
      auto preferred =
          fields.size() == 4 ? nb::parse_u64(fields[3]) : std::nullopt;
      if (!prefix || !router || !preferred)
        return fail(error, "malformed ranking", line_number);
      model.set_ranking(*router, *prefix, static_cast<Asn>(*preferred));
    } else if (directive == "lp-override") {
      auto prefix =
          fields.size() == 5 ? nb::Prefix::parse(fields[1]) : std::nullopt;
      auto router = fields.size() == 5 ? parse_router(fields[2])
                                       : std::nullopt;
      auto neighbor =
          fields.size() == 5 ? nb::parse_u64(fields[3]) : std::nullopt;
      auto lp = fields.size() == 5 ? nb::parse_u64(fields[4]) : std::nullopt;
      if (!prefix || !router || !neighbor || !lp)
        return fail(error, "malformed lp-override", line_number);
      model.set_lp_override(*router, *prefix, static_cast<Asn>(*neighbor),
                            static_cast<std::uint32_t>(*lp));
    } else if (directive == "export-allow") {
      auto prefix =
          fields.size() == 4 ? nb::Prefix::parse(fields[1]) : std::nullopt;
      auto from = fields.size() == 4 ? parse_router(fields[2]) : std::nullopt;
      auto to = fields.size() == 4 ? parse_router(fields[3]) : std::nullopt;
      if (!prefix || !from || !to)
        return fail(error, "malformed export-allow", line_number);
      model.set_export_allow(*from, *to, *prefix);
    } else {
      return fail(error, "unknown directive", line_number);
    }
  }
  if (!saw_header) return fail(error, "empty input", line_number);
  return true;
}

}  // namespace

std::optional<Model> read_model(std::istream& in, std::string* error) {
  Model model;
  if (!parse_into(in, model, error)) return std::nullopt;
  return model;
}

std::optional<Model> model_from_string(const std::string& text,
                                       std::string* error) {
  std::istringstream in(text);
  return read_model(in, error);
}

}  // namespace topo
