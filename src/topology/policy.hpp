// Policy data attached to the quasi-router model.
//
// The refinement heuristic (paper Section 4.6) uses exactly two per-prefix
// mechanisms, both represented here:
//
//  * ExportFilter -- set at the ANNOUNCING neighbor's side of a session:
//    "ensure that routes with shorter AS-paths than the route we are looking
//    for are not propagated to the current quasi-router".  deny_below_len
//    compares against the AS-path length as it arrives at the receiver
//    (announcer's AS already prepended); kDenyAll blocks the prefix entirely.
//    Every refinement-created filter records the quasi-router whose route
//    choice it protects (owner_target) so the filter-deletion step can tell
//    whether removing it would destroy another observed path's setup.
//
//  * RankingRule -- per receiving quasi-router: routes announced by the
//    preferred neighbor AS are imported with MED 0, all others with MED 100,
//    and MED is always compared across neighbor ASes.  This realizes the
//    paper's ranking without touching local-pref (which, per Section 4.6 and
//    [Griffin/Wilfong], risks divergence).
//
// LocalPrefOverride exists for the *ground-truth* generator only: it lets a
// synthetic AS apply "weird" per-prefix policies that the fitted model must
// reproduce without ever seeing them.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>

#include "netbase/ids.hpp"
#include "netbase/ip.hpp"

namespace topo {

using nb::Asn;
using nb::RouterId;

/// Packs a directed router pair into a map key.
constexpr std::uint64_t session_key(RouterId from, RouterId to) {
  return (static_cast<std::uint64_t>(from.value()) << 32) | to.value();
}

/// Packs (router, neighbor-AS) into a map key.
constexpr std::uint64_t router_asn_key(RouterId router, Asn asn) {
  return (static_cast<std::uint64_t>(router.value()) << 32) | asn;
}

struct ExportFilter {
  static constexpr std::uint32_t kDenyAll = 0xffffffffu;

  /// Deny routes whose arriving AS-path length is strictly below this value
  /// (0 = no-op filter).
  std::uint32_t deny_below_len = 0;
  /// The importing quasi-router whose assigned path this filter protects;
  /// invalid for filters not created by refinement.
  RouterId owner_target = nb::kInvalidRouterId;

  bool blocks(std::size_t arriving_len) const {
    return arriving_len < deny_below_len;
  }
};

struct RankingRule {
  /// Routes announced by this neighbor AS import with MED 0 (others 100).
  Asn preferred_neighbor = nb::kInvalidAsn;
};

/// Default MED for imported routes and the preferred-neighbor override.
constexpr std::uint32_t kDefaultMed = 100;
constexpr std::uint32_t kPreferredMed = 0;

/// All per-prefix policy state of a model.
struct PrefixPolicy {
  /// Export filters keyed by directed session (announcer -> receiver).
  std::unordered_map<std::uint64_t, ExportFilter> filters;
  /// Import ranking keyed by receiving router id value.
  std::unordered_map<std::uint32_t, RankingRule> rankings;
  /// Ground-truth-only: local-pref override keyed by (router, neighbor AS).
  std::unordered_map<std::uint64_t, std::uint32_t> lp_overrides;
  /// Ground-truth-only: sessions allowed to export this prefix even when the
  /// valley-free relationship rule would forbid it (a deliberate route
  /// "leak" -- the real-world policy diversity of Section 1/3.3 that breaks
  /// the customer/peer schema).  Keyed by directed session.
  std::unordered_set<std::uint64_t> export_allows;

  bool empty() const {
    return filters.empty() && rankings.empty() && lp_overrides.empty() &&
           export_allows.empty();
  }
};

}  // namespace topo
