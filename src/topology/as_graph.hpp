// Undirected AS-level graph, derived from observed AS-paths exactly as in
// Section 3.1 of the paper: two ASes adjacent on any path are assumed to have
// an agreement to exchange traffic and become neighbors in the graph.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "topology/as_path.hpp"

namespace topo {

class AsGraph {
 public:
  /// Adds an isolated node (no-op if present).
  void add_node(Asn asn);
  /// Adds an undirected edge, creating nodes as needed.  Self-loops and
  /// duplicates are ignored.
  void add_edge(Asn a, Asn b);
  /// Removes a node and all incident edges.
  void remove_node(Asn asn);

  bool has_node(Asn asn) const;
  bool has_edge(Asn a, Asn b) const;

  /// Sorted neighbor list; empty if the node is unknown.
  const std::vector<Asn>& neighbors(Asn asn) const;
  std::size_t degree(Asn asn) const { return neighbors(asn).size(); }

  /// Sorted list of all nodes.
  std::vector<Asn> nodes() const;
  std::size_t num_nodes() const { return adjacency_.size(); }
  std::size_t num_edges() const { return num_edges_; }

  /// All edges as (min, max) pairs, sorted.
  std::vector<std::pair<Asn, Asn>> edges() const;

  /// Builds the graph from a set of AS-paths (loop-free hops only; paths
  /// with loops are skipped, as in the paper's cleanup).
  static AsGraph from_paths(std::span<const AsPath> paths);

  /// Number of connected components.
  std::size_t num_components() const;

 private:
  std::unordered_map<Asn, std::vector<Asn>> adjacency_;
  std::size_t num_edges_ = 0;
  static const std::vector<Asn> kEmpty;
};

}  // namespace topo
