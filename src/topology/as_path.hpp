// AS-path representation.
//
// Convention used throughout the repo (matching how the paper writes paths,
// e.g. "1-7-6"): hops()[0] is the AS nearest the observer -- the AS that
// selected/observed the route -- and hops().back() is the origin AS.
//
// Routes stored inside a router's RIB do NOT include the router's own AS;
// their path begins with the announcing neighbor's AS.  The helper
// `matches_route_path` relates the two representations.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "netbase/ids.hpp"

namespace topo {

using nb::Asn;

class AsPath {
 public:
  AsPath() = default;
  explicit AsPath(std::vector<Asn> hops) : hops_(std::move(hops)) {}
  AsPath(std::initializer_list<Asn> hops) : hops_(hops) {}

  const std::vector<Asn>& hops() const { return hops_; }
  std::size_t length() const { return hops_.size(); }
  bool empty() const { return hops_.empty(); }

  Asn observer() const { return hops_.front(); }
  Asn origin() const { return hops_.back(); }

  /// Prepends an AS at the observer side (route export through `asn`).
  void prepend(Asn asn) { hops_.insert(hops_.begin(), asn); }

  /// True if any AS occurs more than once (routing loop).
  bool has_loop() const;

  /// True if `asn` occurs anywhere on the path.
  bool contains(Asn asn) const;

  /// Collapses consecutive duplicates (removes AS-path prepending), as done
  /// for the paper's dataset (footnote 1).
  AsPath without_prepending() const;

  /// The suffix starting at hop index i: [hops[i] ... origin].
  AsPath suffix_from(std::size_t i) const;

  /// True if this path (a suffix [a, ..., origin]) corresponds to a route
  /// stored at a router of AS `hops()[0]` whose path is `route_path`
  /// (= [neighbor ... origin], not including the storing AS itself).
  bool matches_route_path(std::span<const Asn> route_path) const;

  /// Parses "1 7 6" or "1-7-6"; nullopt on malformed input.
  static std::optional<AsPath> parse(std::string_view text);

  /// "1 7 6".
  std::string str() const;

  friend auto operator<=>(const AsPath&, const AsPath&) = default;

 private:
  std::vector<Asn> hops_;
};

/// Hash functor so paths can key unordered containers.
struct AsPathHash {
  std::size_t operator()(const AsPath& path) const noexcept;
  std::size_t operator()(std::span<const Asn> hops) const noexcept;
};

}  // namespace topo
