// AS-hierarchy classification, following Section 3.1 of the paper:
//
//  * level-1: grown from a seed list of known tier-1 ASes such that the
//    level-1 subgraph stays a clique (the largest clique including the seeds);
//  * level-2: direct neighbors of a level-1 AS;
//  * other:   everything else.
//
// Plus the stub analysis: an AS provides transit iff it appears in the middle
// of some AS-path; non-transit (stub) ASes are single-homed or multi-homed by
// their number of observed neighbors.  Single-homed stubs are removed from
// the modeling graph after transferring their path information to their
// provider (Section 3.1 / 4.1).
#pragma once

#include <set>
#include <span>
#include <vector>

#include "topology/as_graph.hpp"
#include "topology/as_path.hpp"

namespace topo {

enum class Level { kLevel1, kLevel2, kOther };

struct Hierarchy {
  std::set<Asn> level1;
  std::set<Asn> level2;
  std::set<Asn> other;

  Level level_of(Asn asn) const;
};

/// Grows the largest clique containing `seeds` by greedily adding
/// highest-degree ASes that connect to every current member (deterministic:
/// degree desc, ASN asc).  Seeds are accepted greedily in order; a seed that
/// is missing from the graph or not adjacent to all previously accepted
/// seeds is skipped.
std::set<Asn> grow_level1_clique(const AsGraph& graph,
                                 std::span<const Asn> seeds);

/// Full classification given the level-1 set.
Hierarchy classify_hierarchy(const AsGraph& graph,
                             const std::set<Asn>& level1);

struct StubAnalysis {
  std::set<Asn> transit;       // appear in the middle of some AS-path
  std::set<Asn> single_homed;  // stub with exactly one observed neighbor
  std::set<Asn> multi_homed;   // stub with more than one observed neighbor
};

/// Classifies transit/stub ASes from observed paths and the derived graph.
StubAnalysis analyze_stubs(const AsGraph& graph, std::span<const AsPath> paths);

/// Rewrites observed paths so that every path ending in a single-homed stub
/// is transferred to the stub's provider (drops the final hop), and drops
/// paths with loops.  Paths reduced to a single hop (origin == observer)
/// are kept: they still pin the origination.  Duplicates are removed.
std::vector<AsPath> remove_single_homed_stubs(std::span<const AsPath> paths,
                                              const std::set<Asn>& single_homed);

}  // namespace topo
