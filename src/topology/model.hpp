// The AS-routing model of the paper (Section 4.1): every AS consists of one
// or more quasi-routers; each AS-level edge is realized by eBGP sessions
// between quasi-routers of the two ASes; per-prefix policies (export filters
// and MED rankings) shape route selection.  Quasi-routers of the same AS are
// deliberately NOT connected to each other (no iBGP) -- each one receives
// routes directly from neighbor ASes and selects independently.
//
// The same class doubles as the *ground-truth* router-level network of the
// synthetic Internet (where it additionally carries per-session IGP costs
// producing hot-potato route diversity, and relationship classes driving
// local-pref / valley-free export).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "netbase/ids.hpp"
#include "netbase/ip.hpp"
#include "topology/as_graph.hpp"
#include "topology/policy.hpp"
#include "topology/relationships.hpp"

namespace topo {

using nb::Prefix;

class Model {
 public:
  /// Dense router index used by the simulation engine.
  using Dense = std::uint32_t;
  static constexpr Dense kNoRouter = 0xffffffffu;

  Model() = default;

  /// Initial model of Section 4.5: one quasi-router per AS, one session per
  /// AS-level edge.
  static Model one_router_per_as(const AsGraph& graph);

  // ---- construction / mutation -------------------------------------------

  /// Adds a quasi-router to `asn` (index = current count) with no sessions.
  RouterId add_router(Asn asn);

  /// Adds a new quasi-router to src's AS, copying all of src's sessions, IGP
  /// costs and (when copy_policies) per-prefix policies: import-side filters
  /// are re-keyed toward the duplicate with the duplicate as owner; export
  /// filters and rankings are copied verbatim.  This guarantees the duplicate
  /// receives the same routes as src (paper Section 4.6: "the new
  /// quasi-router has the same neighbors and policies as the copied one").
  RouterId duplicate_router(RouterId src, bool copy_policies = true);

  /// Establishes a (bidirectional) eBGP session; no-op if present.
  /// Sessions must connect different ASes.
  void add_session(RouterId a, RouterId b);
  /// Removes a session; no-op if absent.
  void remove_session(RouterId a, RouterId b);
  bool has_session(RouterId a, RouterId b) const;

  // ---- lookup -------------------------------------------------------------

  bool has_as(Asn asn) const { return as_routers_.count(asn) > 0; }
  bool has_router(RouterId id) const { return dense_.count(id.value()) > 0; }

  /// Model epoch: incremented by every mutating member (including no-op
  /// mutations -- the counter is conservative).  Consumers that cache
  /// model-derived state (bgp::Engine::SimContext) compare epochs instead of
  /// re-deriving per use; a stale epoch is the ONLY invalidation signal, so
  /// every path that can change routers, sessions, costs or policies must
  /// bump it (the non-const `policy()` accessor bumps pre-emptively because
  /// it hands out a mutable reference).
  std::uint64_t generation() const { return generation_; }

  /// Quasi-routers of an AS, ascending by index (empty if unknown AS).
  const std::vector<Dense>& routers_of(Asn asn) const;

  /// Peer routers of `r` (dense indices), ascending by RouterId.
  const std::vector<Dense>& peers(Dense r) const { return routers_[r].peers; }

  RouterId router_id(Dense r) const { return routers_[r].id; }
  Dense dense(RouterId id) const;

  std::size_t num_routers() const { return routers_.size(); }
  std::size_t num_sessions() const { return num_sessions_; }
  std::vector<Asn> asns() const;
  std::size_t num_ases() const { return as_routers_.size(); }

  // ---- relationship classes (baseline + ground truth) ---------------------

  /// How AS `of` sees AS `neighbor`; uniform across the AS's routers.
  void set_neighbor_class(Asn of, Asn neighbor, NeighborClass cls);
  NeighborClass neighbor_class(Asn of, Asn neighbor) const;
  /// Adopts all classes from an inferred relationship map for graph edges.
  void adopt_relationships(const AsGraph& graph, const RelationshipMap& rels);

  // ---- IGP costs (ground truth hot-potato diversity) -----------------------

  /// Cost the receiver assigns to routes learned over session (receiver,
  /// sender); default 0.
  void set_igp_cost(RouterId receiver, RouterId sender, std::uint32_t cost);
  std::uint32_t igp_cost(Dense receiver, Dense sender) const;

  // ---- per-prefix policies --------------------------------------------------

  /// Sets/overwrites the export filter on session from->to for `prefix`.
  void set_export_filter(RouterId from, RouterId to, const Prefix& prefix,
                         std::uint32_t deny_below_len, RouterId owner_target);
  /// Lowers (never raises) the filter threshold so a route of
  /// `arriving_len` passes; removes the rule if it becomes a no-op.
  void relax_export_filter(RouterId from, RouterId to, const Prefix& prefix,
                           std::size_t arriving_len);
  /// The filter on from->to for prefix, if any.
  const ExportFilter* find_export_filter(Dense from, Dense to,
                                         const PrefixPolicy* policy) const;

  void set_ranking(RouterId router, const Prefix& prefix, Asn preferred);
  /// Removes the per-prefix ranking of `router` (no-op if absent).
  void clear_ranking(RouterId router, const Prefix& prefix);
  /// Prefix-independent ranking: applies when a router has NO per-prefix
  /// ranking for the simulated prefix (policy generalization; see
  /// core/generalize).
  void set_default_ranking(RouterId router, Asn preferred);
  void clear_default_ranking(RouterId router);
  /// kInvalidAsn when no default ranking is set.
  Asn default_ranking(Dense router) const;
  std::size_t num_default_rankings() const { return default_rankings_.size(); }
  void set_lp_override(RouterId router, const Prefix& prefix, Asn neighbor,
                       std::uint32_t local_pref);
  /// Exempts the session from the valley-free export rule for `prefix`
  /// (ground-truth route leaks).
  void set_export_allow(RouterId from, RouterId to, const Prefix& prefix);

  /// Removes all rules owned by / attached to `target` for `prefix`
  /// (import-side filters owned by it and its ranking rule).
  void clear_owned_rules(const Prefix& prefix, RouterId target);

  /// Policy overlay for a prefix (nullptr if none).
  const PrefixPolicy* find_policy(const Prefix& prefix) const;
  PrefixPolicy& policy(const Prefix& prefix) {
    ++generation_;  // caller receives a mutable reference
    return prefix_policies_[prefix];
  }

  /// Drops policy overlays that have become empty (e.g. after
  /// analysis::prune_dead_policies); returns the number removed.
  std::size_t drop_empty_policies();

  /// Totals across prefixes, for model-size reporting.
  struct PolicyStats {
    std::size_t prefixes_with_policy = 0;
    std::size_t filters = 0;
    std::size_t rankings = 0;
    std::size_t lp_overrides = 0;
    std::size_t export_allows = 0;
  };
  PolicyStats policy_stats() const;

  /// Count of ASes with more than one quasi-router, and the per-AS counts.
  std::map<Asn, std::size_t> router_counts() const;

  // ---- bulk read access (serialization, reports) ---------------------------

  const std::map<Prefix, PrefixPolicy>& prefix_policies() const {
    return prefix_policies_;
  }
  const std::map<std::pair<Asn, Asn>, NeighborClass>& neighbor_classes()
      const {
    return neighbor_class_;
  }
  /// All non-zero IGP costs as (receiver, sender, cost), sorted.
  std::vector<std::tuple<RouterId, RouterId, std::uint32_t>> igp_costs() const;

 private:
  // Test-only backdoor (defined in analysis/fixtures.hpp): builds the
  // invalid states the public API rejects -- dangling peers, intra-AS
  // sessions -- so the analysis linter and its tests can prove they are
  // detected.  Not part of the public surface.
  friend class ModelMutator;

  struct RouterRec {
    RouterId id;
    std::vector<Dense> peers;  // ascending by RouterId
  };

  void insert_peer(Dense at, Dense peer);
  void erase_peer(Dense at, Dense peer);

  std::vector<RouterRec> routers_;
  std::unordered_map<std::uint32_t, Dense> dense_;  // RouterId value -> index
  std::map<Asn, std::vector<Dense>> as_routers_;
  std::map<std::pair<Asn, Asn>, NeighborClass> neighbor_class_;
  std::unordered_map<std::uint64_t, std::uint32_t> igp_cost_;
  std::map<Prefix, PrefixPolicy> prefix_policies_;
  std::unordered_map<std::uint32_t, Asn> default_rankings_;  // router id value
  std::size_t num_sessions_ = 0;
  std::uint64_t generation_ = 0;
  static const std::vector<Dense> kEmptyDense;
};

}  // namespace topo
