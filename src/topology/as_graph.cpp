#include "topology/as_graph.hpp"

#include <algorithm>

namespace topo {

const std::vector<Asn> AsGraph::kEmpty{};

void AsGraph::add_node(Asn asn) { adjacency_.try_emplace(asn); }

void AsGraph::add_edge(Asn a, Asn b) {
  if (a == b) return;
  auto& na = adjacency_[a];
  auto it = std::lower_bound(na.begin(), na.end(), b);
  if (it != na.end() && *it == b) return;  // already present
  na.insert(it, b);
  auto& nb_ = adjacency_[b];
  nb_.insert(std::lower_bound(nb_.begin(), nb_.end(), a), a);
  ++num_edges_;
}

void AsGraph::remove_node(Asn asn) {
  auto it = adjacency_.find(asn);
  if (it == adjacency_.end()) return;
  for (Asn peer : it->second) {
    auto& np = adjacency_[peer];
    auto pit = std::lower_bound(np.begin(), np.end(), asn);
    if (pit != np.end() && *pit == asn) np.erase(pit);
    --num_edges_;
  }
  adjacency_.erase(it);
}

bool AsGraph::has_node(Asn asn) const { return adjacency_.count(asn) > 0; }

bool AsGraph::has_edge(Asn a, Asn b) const {
  auto it = adjacency_.find(a);
  if (it == adjacency_.end()) return false;
  return std::binary_search(it->second.begin(), it->second.end(), b);
}

const std::vector<Asn>& AsGraph::neighbors(Asn asn) const {
  auto it = adjacency_.find(asn);
  return it == adjacency_.end() ? kEmpty : it->second;
}

std::vector<Asn> AsGraph::nodes() const {
  std::vector<Asn> out;
  out.reserve(adjacency_.size());
  for (auto& [asn, neighbors] : adjacency_) out.push_back(asn);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::pair<Asn, Asn>> AsGraph::edges() const {
  std::vector<std::pair<Asn, Asn>> out;
  out.reserve(num_edges_);
  for (auto& [asn, neighbors] : adjacency_) {
    for (Asn peer : neighbors) {
      if (asn < peer) out.emplace_back(asn, peer);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

AsGraph AsGraph::from_paths(std::span<const AsPath> paths) {
  AsGraph graph;
  for (const AsPath& path : paths) {
    if (path.has_loop()) continue;
    const auto& hops = path.hops();
    if (hops.size() == 1) graph.add_node(hops[0]);
    for (std::size_t i = 0; i + 1 < hops.size(); ++i)
      graph.add_edge(hops[i], hops[i + 1]);
  }
  return graph;
}

std::size_t AsGraph::num_components() const {
  std::unordered_map<Asn, bool> visited;
  visited.reserve(adjacency_.size());
  std::size_t components = 0;
  std::vector<Asn> stack;
  for (auto node : nodes()) {
    if (visited[node]) continue;
    ++components;
    stack.push_back(node);
    visited[node] = true;
    while (!stack.empty()) {
      Asn current = stack.back();
      stack.pop_back();
      for (Asn peer : neighbors(current)) {
        if (!visited[peer]) {
          visited[peer] = true;
          stack.push_back(peer);
        }
      }
    }
  }
  return components;
}

}  // namespace topo
