// Inference of AS business relationships, used ONLY for the Section 3.3
// baseline ("Customer/Peering Policies" column of Table 2).  The paper's own
// model is deliberately agnostic to relationships; this module exists so the
// baseline the paper argues against can be reproduced faithfully.
//
// Heuristic (paper Section 3.3): declare all links between level-1 ASes as
// peering, then iteratively infer customer-provider relationships using the
// valley-free assumption; remaining edges are voted Gao-style by degree peak.
// Conflicting directions -> sibling.  Anything untouched stays unknown.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <span>

#include "topology/as_graph.hpp"
#include "topology/as_path.hpp"

namespace topo {

enum class Relationship : std::uint8_t {
  kProviderCustomer,  // first AS is the provider of the second
  kCustomerProvider,  // first AS is the customer of the second
  kPeerPeer,
  kSibling,
  kUnknown,
};

/// Relationship of `b` from `a`'s point of view.
enum class NeighborClass : std::uint8_t {
  kCustomer,  // b is a's customer
  kPeer,
  kProvider,  // b is a's provider
  kUnknown,
};

class RelationshipMap {
 public:
  /// Sets the relationship on edge (a, b); `rel` is interpreted with `a`
  /// first.  Stored canonically.
  void set(Asn a, Asn b, Relationship rel);

  /// Relationship with `a` first; kUnknown if the edge was never classified.
  Relationship get(Asn a, Asn b) const;

  /// How a sees b (siblings are treated as peers, per paper footnote 2).
  NeighborClass classify_neighbor(Asn a, Asn b) const;

  struct Counts {
    std::size_t customer_provider = 0;  // directed c-p edges (one per edge)
    std::size_t peer_peer = 0;
    std::size_t sibling = 0;
    std::size_t unknown = 0;
  };
  Counts counts(const AsGraph& graph) const;

 private:
  static Relationship flip(Relationship rel);
  // Key: (min ASN, max ASN); value oriented with min first.
  std::map<std::pair<Asn, Asn>, Relationship> edges_;
};

/// Runs the inference described above.
///  * level1: the tier-1 clique (its internal edges become peer-peer);
///  * paths:  observed AS-paths (observer first, origin last).
RelationshipMap infer_relationships(const AsGraph& graph,
                                    const std::set<Asn>& level1,
                                    std::span<const AsPath> paths);

/// Fraction of paths that are valley-free under the given relationship map
/// (edges of unknown relationship are permissive).  Used as a sanity /
/// validation statistic, mirroring the paper's verification of its inference.
double valley_free_fraction(const RelationshipMap& rels,
                            std::span<const AsPath> paths);

}  // namespace topo
