#include "topology/hierarchy.hpp"

#include <algorithm>
#include <unordered_set>

namespace topo {

Level Hierarchy::level_of(Asn asn) const {
  if (level1.count(asn)) return Level::kLevel1;
  if (level2.count(asn)) return Level::kLevel2;
  return Level::kOther;
}

std::set<Asn> grow_level1_clique(const AsGraph& graph,
                                 std::span<const Asn> seeds) {
  // Accept seeds greedily, skipping any that would break completeness (the
  // observed graph may lack some tier-1 interconnections).
  std::set<Asn> clique;
  for (Asn seed : seeds) {
    if (!graph.has_node(seed)) continue;
    bool complete = true;
    for (Asn member : clique) {
      if (!graph.has_edge(seed, member)) {
        complete = false;
        break;
      }
    }
    if (complete) clique.insert(seed);
  }
  // Candidates: sorted by degree descending (ASN ascending as tie-break) so
  // the well-connected cores are considered first; greedy growth keeps the
  // subgraph complete, mirroring the paper's construction.
  std::vector<Asn> candidates = graph.nodes();
  std::stable_sort(candidates.begin(), candidates.end(), [&](Asn a, Asn b) {
    if (graph.degree(a) != graph.degree(b))
      return graph.degree(a) > graph.degree(b);
    return a < b;
  });
  for (Asn candidate : candidates) {
    if (clique.count(candidate)) continue;
    bool complete = true;
    for (Asn member : clique) {
      if (!graph.has_edge(candidate, member)) {
        complete = false;
        break;
      }
    }
    if (complete) clique.insert(candidate);
  }
  return clique;
}

Hierarchy classify_hierarchy(const AsGraph& graph,
                             const std::set<Asn>& level1) {
  Hierarchy h;
  h.level1 = level1;
  for (Asn asn : graph.nodes()) {
    if (h.level1.count(asn)) continue;
    bool adjacent_to_level1 = false;
    for (Asn peer : graph.neighbors(asn)) {
      if (h.level1.count(peer)) {
        adjacent_to_level1 = true;
        break;
      }
    }
    if (adjacent_to_level1) {
      h.level2.insert(asn);
    } else {
      h.other.insert(asn);
    }
  }
  return h;
}

StubAnalysis analyze_stubs(const AsGraph& graph,
                           std::span<const AsPath> paths) {
  StubAnalysis out;
  for (const AsPath& path : paths) {
    const auto& hops = path.hops();
    for (std::size_t i = 1; i + 1 < hops.size(); ++i)
      out.transit.insert(hops[i]);
  }
  for (Asn asn : graph.nodes()) {
    if (out.transit.count(asn)) continue;
    if (graph.degree(asn) <= 1) {
      out.single_homed.insert(asn);
    } else {
      out.multi_homed.insert(asn);
    }
  }
  return out;
}

std::vector<AsPath> remove_single_homed_stubs(
    std::span<const AsPath> paths, const std::set<Asn>& single_homed) {
  std::unordered_set<AsPath, AsPathHash,
                     std::equal_to<AsPath>>
      seen;
  std::vector<AsPath> out;
  out.reserve(paths.size());
  for (const AsPath& path : paths) {
    if (path.has_loop()) continue;
    std::vector<Asn> hops = path.hops();
    // Strip single-homed stub origins (a chain of them, defensively).
    while (hops.size() > 1 && single_homed.count(hops.back()))
      hops.pop_back();
    // Paths *observed at* a single-homed stub transfer to its provider too.
    std::size_t begin = 0;
    while (begin + 1 < hops.size() && single_homed.count(hops[begin])) ++begin;
    AsPath reduced{std::vector<Asn>(hops.begin() + static_cast<std::ptrdiff_t>(begin),
                                    hops.end())};
    if (reduced.empty()) continue;
    if (seen.insert(reduced).second) out.push_back(std::move(reduced));
  }
  return out;
}

}  // namespace topo
