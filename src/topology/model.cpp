#include "topology/model.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace topo {

const std::vector<Model::Dense> Model::kEmptyDense{};

Model Model::one_router_per_as(const AsGraph& graph) {
  Model model;
  for (Asn asn : graph.nodes()) model.add_router(asn);
  for (auto [a, b] : graph.edges()) {
    model.add_session(RouterId{a, 0}, RouterId{b, 0});
  }
  return model;
}

RouterId Model::add_router(Asn asn) {
  ++generation_;
  auto& list = as_routers_[asn];
  if (list.size() >= 0xffff)
    throw std::length_error("too many quasi-routers in AS");
  RouterId id{asn, static_cast<std::uint16_t>(list.size())};
  Dense index = static_cast<Dense>(routers_.size());
  routers_.push_back({id, {}});
  dense_[id.value()] = index;
  list.push_back(index);
  return id;
}

RouterId Model::duplicate_router(RouterId src, bool copy_policies) {
  ++generation_;  // mutates policy maps directly, beyond add_router/add_session
  Dense src_dense = dense(src);
  RouterId copy = add_router(src.asn());
  // Copy sessions (and per-session IGP costs, both directions).
  for (Dense peer : std::vector<Dense>(routers_[src_dense].peers)) {
    add_session(copy, routers_[peer].id);
    auto in = igp_cost_.find(session_key(src, routers_[peer].id));
    if (in != igp_cost_.end())
      igp_cost_[session_key(copy, routers_[peer].id)] = in->second;
    auto out = igp_cost_.find(session_key(routers_[peer].id, src));
    if (out != igp_cost_.end())
      igp_cost_[session_key(routers_[peer].id, copy)] = out->second;
  }
  if (!copy_policies) return copy;
  if (auto it = default_rankings_.find(src.value());
      it != default_rankings_.end()) {
    default_rankings_[copy.value()] = it->second;
  }
  for (auto& [prefix, policy] : prefix_policies_) {
    // Export-allow leaks involving src replicate to the copy.
    std::vector<std::uint64_t> allow_add;
    for (std::uint64_t key : policy.export_allows) {
      RouterId from = RouterId::from_value(static_cast<std::uint32_t>(key >> 32));
      RouterId to = RouterId::from_value(static_cast<std::uint32_t>(key));
      if (to == src) allow_add.push_back(session_key(from, copy));
      if (from == src) allow_add.push_back(session_key(copy, to));
    }
    for (std::uint64_t key : allow_add) policy.export_allows.insert(key);
    // Import-side filters: sessions peer -> src become peer -> copy, owned by
    // the copy (they exist to preserve its RIB-In; the refinement pass that
    // triggered the duplication overwrites them as needed).
    std::vector<std::pair<std::uint64_t, ExportFilter>> to_add;
    for (auto& [key, filter] : policy.filters) {
      RouterId from = RouterId::from_value(static_cast<std::uint32_t>(key >> 32));
      RouterId to = RouterId::from_value(static_cast<std::uint32_t>(key));
      if (to == src) {
        ExportFilter copied = filter;
        copied.owner_target = copy;
        to_add.emplace_back(session_key(from, copy), copied);
      } else if (from == src) {
        // Export-side behaviour is also part of "same policies".
        to_add.emplace_back(session_key(copy, to), filter);
      }
    }
    for (auto& [key, filter] : to_add) policy.filters[key] = filter;
    auto rank = policy.rankings.find(src.value());
    if (rank != policy.rankings.end())
      policy.rankings[copy.value()] = rank->second;
    std::vector<std::pair<std::uint64_t, std::uint32_t>> lp_add;
    for (auto& [key, lp] : policy.lp_overrides) {
      RouterId router = RouterId::from_value(static_cast<std::uint32_t>(key >> 32));
      if (router == src) {
        Asn neighbor = static_cast<Asn>(key & 0xffffffffu);
        lp_add.emplace_back(router_asn_key(copy, neighbor), lp);
      }
    }
    for (auto& [key, lp] : lp_add) policy.lp_overrides[key] = lp;
  }
  return copy;
}

void Model::add_session(RouterId a, RouterId b) {
  ++generation_;
  if (a.asn() == b.asn())
    throw std::invalid_argument("sessions must connect different ASes");
  Dense da = dense(a), db = dense(b);
  const auto& peers = routers_[da].peers;
  auto pos = std::lower_bound(peers.begin(), peers.end(), db,
                              [&](Dense x, Dense y) {
                                return routers_[x].id < routers_[y].id;
                              });
  if (pos != peers.end() && *pos == db) return;
  insert_peer(da, db);
  insert_peer(db, da);
  ++num_sessions_;
}

void Model::remove_session(RouterId a, RouterId b) {
  ++generation_;
  if (!has_router(a) || !has_router(b)) return;
  Dense da = dense(a), db = dense(b);
  const auto& peers = routers_[da].peers;
  if (!std::binary_search(peers.begin(), peers.end(), db,
                          [&](Dense x, Dense y) {
                            return routers_[x].id < routers_[y].id;
                          }))
    return;
  erase_peer(da, db);
  erase_peer(db, da);
  --num_sessions_;
}

bool Model::has_session(RouterId a, RouterId b) const {
  auto ita = dense_.find(a.value());
  auto itb = dense_.find(b.value());
  if (ita == dense_.end() || itb == dense_.end()) return false;
  const auto& peers = routers_[ita->second].peers;
  return std::binary_search(peers.begin(), peers.end(), itb->second,
                            [&](Dense x, Dense y) {
                              return routers_[x].id < routers_[y].id;
                            });
}

const std::vector<Model::Dense>& Model::routers_of(Asn asn) const {
  auto it = as_routers_.find(asn);
  return it == as_routers_.end() ? kEmptyDense : it->second;
}

Model::Dense Model::dense(RouterId id) const {
  auto it = dense_.find(id.value());
  if (it == dense_.end())
    throw std::out_of_range("unknown router " + id.str());
  return it->second;
}

std::vector<Asn> Model::asns() const {
  std::vector<Asn> out;
  out.reserve(as_routers_.size());
  for (auto& [asn, routers] : as_routers_) out.push_back(asn);
  return out;
}

void Model::set_neighbor_class(Asn of, Asn neighbor, NeighborClass cls) {
  ++generation_;
  neighbor_class_[{of, neighbor}] = cls;
}

NeighborClass Model::neighbor_class(Asn of, Asn neighbor) const {
  auto it = neighbor_class_.find({of, neighbor});
  return it == neighbor_class_.end() ? NeighborClass::kUnknown : it->second;
}

void Model::adopt_relationships(const AsGraph& graph,
                                const RelationshipMap& rels) {
  for (auto [a, b] : graph.edges()) {
    set_neighbor_class(a, b, rels.classify_neighbor(a, b));
    set_neighbor_class(b, a, rels.classify_neighbor(b, a));
  }
}

void Model::set_igp_cost(RouterId receiver, RouterId sender,
                         std::uint32_t cost) {
  ++generation_;
  if (cost == 0) {
    igp_cost_.erase(session_key(receiver, sender));
  } else {
    igp_cost_[session_key(receiver, sender)] = cost;
  }
}

std::uint32_t Model::igp_cost(Dense receiver, Dense sender) const {
  if (igp_cost_.empty()) return 0;
  auto it = igp_cost_.find(
      session_key(routers_[receiver].id, routers_[sender].id));
  return it == igp_cost_.end() ? 0 : it->second;
}

void Model::set_export_filter(RouterId from, RouterId to, const Prefix& prefix,
                              std::uint32_t deny_below_len,
                              RouterId owner_target) {
  ++generation_;
  auto& policy = prefix_policies_[prefix];
  if (deny_below_len == 0) {
    policy.filters.erase(session_key(from, to));
  } else {
    policy.filters[session_key(from, to)] =
        ExportFilter{deny_below_len, owner_target};
  }
}

void Model::relax_export_filter(RouterId from, RouterId to,
                                const Prefix& prefix,
                                std::size_t arriving_len) {
  ++generation_;
  auto policy_it = prefix_policies_.find(prefix);
  if (policy_it == prefix_policies_.end()) return;
  auto it = policy_it->second.filters.find(session_key(from, to));
  if (it == policy_it->second.filters.end()) return;
  if (!it->second.blocks(arriving_len)) return;
  if (arriving_len == 0) {
    policy_it->second.filters.erase(it);
  } else {
    it->second.deny_below_len = static_cast<std::uint32_t>(arriving_len);
  }
}

const ExportFilter* Model::find_export_filter(Dense from, Dense to,
                                              const PrefixPolicy* policy) const {
  if (policy == nullptr) return nullptr;
  auto it = policy->filters.find(
      session_key(routers_[from].id, routers_[to].id));
  return it == policy->filters.end() ? nullptr : &it->second;
}

void Model::set_ranking(RouterId router, const Prefix& prefix, Asn preferred) {
  ++generation_;
  prefix_policies_[prefix].rankings[router.value()] =
      RankingRule{preferred};
}

void Model::clear_ranking(RouterId router, const Prefix& prefix) {
  ++generation_;
  auto it = prefix_policies_.find(prefix);
  if (it == prefix_policies_.end()) return;
  it->second.rankings.erase(router.value());
}

void Model::set_default_ranking(RouterId router, Asn preferred) {
  ++generation_;
  default_rankings_[router.value()] = preferred;
}

void Model::clear_default_ranking(RouterId router) {
  ++generation_;
  default_rankings_.erase(router.value());
}

Asn Model::default_ranking(Dense router) const {
  if (default_rankings_.empty()) return nb::kInvalidAsn;
  auto it = default_rankings_.find(routers_[router].id.value());
  return it == default_rankings_.end() ? nb::kInvalidAsn : it->second;
}

void Model::set_lp_override(RouterId router, const Prefix& prefix,
                            Asn neighbor, std::uint32_t local_pref) {
  ++generation_;
  prefix_policies_[prefix].lp_overrides[router_asn_key(router, neighbor)] =
      local_pref;
}

void Model::set_export_allow(RouterId from, RouterId to,
                             const Prefix& prefix) {
  ++generation_;
  prefix_policies_[prefix].export_allows.insert(session_key(from, to));
}

void Model::clear_owned_rules(const Prefix& prefix, RouterId target) {
  ++generation_;
  auto policy_it = prefix_policies_.find(prefix);
  if (policy_it == prefix_policies_.end()) return;
  auto& policy = policy_it->second;
  for (auto it = policy.filters.begin(); it != policy.filters.end();) {
    RouterId to = RouterId::from_value(static_cast<std::uint32_t>(it->first));
    if (to == target && it->second.owner_target == target) {
      it = policy.filters.erase(it);
    } else {
      ++it;
    }
  }
  policy.rankings.erase(target.value());
}

const PrefixPolicy* Model::find_policy(const Prefix& prefix) const {
  auto it = prefix_policies_.find(prefix);
  return it == prefix_policies_.end() ? nullptr : &it->second;
}

std::size_t Model::drop_empty_policies() {
  ++generation_;
  return std::erase_if(prefix_policies_,
                       [](const auto& entry) { return entry.second.empty(); });
}

Model::PolicyStats Model::policy_stats() const {
  PolicyStats stats;
  for (auto& [prefix, policy] : prefix_policies_) {
    if (policy.empty()) continue;
    ++stats.prefixes_with_policy;
    stats.filters += policy.filters.size();
    stats.rankings += policy.rankings.size();
    stats.lp_overrides += policy.lp_overrides.size();
    stats.export_allows += policy.export_allows.size();
  }
  return stats;
}

std::map<Asn, std::size_t> Model::router_counts() const {
  std::map<Asn, std::size_t> out;
  for (auto& [asn, routers] : as_routers_) out[asn] = routers.size();
  return out;
}

std::vector<std::tuple<RouterId, RouterId, std::uint32_t>> Model::igp_costs()
    const {
  std::vector<std::tuple<RouterId, RouterId, std::uint32_t>> out;
  out.reserve(igp_cost_.size());
  for (auto& [key, cost] : igp_cost_) {
    out.emplace_back(RouterId::from_value(static_cast<std::uint32_t>(key >> 32)),
                     RouterId::from_value(static_cast<std::uint32_t>(key)),
                     cost);
  }
  std::sort(out.begin(), out.end());
  return out;
}

void Model::insert_peer(Dense at, Dense peer) {
  auto& peers = routers_[at].peers;
  peers.insert(std::lower_bound(peers.begin(), peers.end(), peer,
                                [&](Dense x, Dense y) {
                                  return routers_[x].id < routers_[y].id;
                                }),
               peer);
}

void Model::erase_peer(Dense at, Dense peer) {
  auto& peers = routers_[at].peers;
  auto it = std::lower_bound(peers.begin(), peers.end(), peer,
                             [&](Dense x, Dense y) {
                               return routers_[x].id < routers_[y].id;
                             });
  if (it != peers.end() && *it == peer) peers.erase(it);
}

}  // namespace topo
