#include "topology/relationships.hpp"

#include <algorithm>
#include <unordered_map>

namespace topo {
namespace {

// Directed "a is customer of b" convenience over the canonical storage.
struct EdgeKey {
  Asn a, b;
};

}  // namespace

Relationship RelationshipMap::flip(Relationship rel) {
  switch (rel) {
    case Relationship::kProviderCustomer:
      return Relationship::kCustomerProvider;
    case Relationship::kCustomerProvider:
      return Relationship::kProviderCustomer;
    default:
      return rel;
  }
}

void RelationshipMap::set(Asn a, Asn b, Relationship rel) {
  if (a > b) {
    std::swap(a, b);
    rel = flip(rel);
  }
  edges_[{a, b}] = rel;
}

Relationship RelationshipMap::get(Asn a, Asn b) const {
  bool flipped = a > b;
  if (flipped) std::swap(a, b);
  auto it = edges_.find({a, b});
  if (it == edges_.end()) return Relationship::kUnknown;
  return flipped ? flip(it->second) : it->second;
}

NeighborClass RelationshipMap::classify_neighbor(Asn a, Asn b) const {
  switch (get(a, b)) {
    case Relationship::kProviderCustomer:
      return NeighborClass::kCustomer;  // a provides for b -> b is customer
    case Relationship::kCustomerProvider:
      return NeighborClass::kProvider;
    case Relationship::kPeerPeer:
    case Relationship::kSibling:  // treated like peering (paper footnote 2)
      return NeighborClass::kPeer;
    case Relationship::kUnknown:
      return NeighborClass::kUnknown;
  }
  return NeighborClass::kUnknown;
}

RelationshipMap::Counts RelationshipMap::counts(const AsGraph& graph) const {
  Counts out;
  for (auto [a, b] : graph.edges()) {
    switch (get(a, b)) {
      case Relationship::kProviderCustomer:
      case Relationship::kCustomerProvider:
        ++out.customer_provider;
        break;
      case Relationship::kPeerPeer:
        ++out.peer_peer;
        break;
      case Relationship::kSibling:
        ++out.sibling;
        break;
      case Relationship::kUnknown:
        ++out.unknown;
        break;
    }
  }
  return out;
}

namespace {

// Forces "a is customer of b" on the map; direction conflicts demote the edge
// to sibling (both transit for each other); established peerings win.
// Returns true if the map changed.
bool force_uphill(RelationshipMap& rels, Asn a, Asn b) {
  Relationship current = rels.get(a, b);
  switch (current) {
    case Relationship::kCustomerProvider:
    case Relationship::kPeerPeer:
    case Relationship::kSibling:
      return false;
    case Relationship::kProviderCustomer:
      rels.set(a, b, Relationship::kSibling);
      return true;
    case Relationship::kUnknown:
      rels.set(a, b, Relationship::kCustomerProvider);
      return true;
  }
  return false;
}

bool force_downhill(RelationshipMap& rels, Asn a, Asn b) {
  return force_uphill(rels, b, a);
}

}  // namespace

RelationshipMap infer_relationships(const AsGraph& graph,
                                    const std::set<Asn>& level1,
                                    std::span<const AsPath> paths) {
  RelationshipMap rels;
  // Step 1: tier-1 interconnections are peerings by declaration.
  for (Asn a : level1) {
    for (Asn b : level1) {
      if (a < b && graph.has_edge(a, b))
        rels.set(a, b, Relationship::kPeerPeer);
    }
  }

  // Step 2: valley-free constraint propagation.  In a path written observer
  // first, traffic flows observer -> origin, so a valley-free path is a run
  // of uphill (customer->provider) edges, at most one peer edge, then only
  // downhill (provider->customer) edges.  A known peer/downhill edge forces
  // everything to its right downhill; a known uphill edge forces everything
  // to its left uphill.
  bool changed = true;
  for (int round = 0; round < 16 && changed; ++round) {
    changed = false;
    for (const AsPath& path : paths) {
      const auto& hops = path.hops();
      if (hops.size() < 2 || path.has_loop()) continue;
      const std::size_t num_edges = hops.size() - 1;
      std::ptrdiff_t leftmost_nonup = -1;   // first peer-or-downhill edge
      std::ptrdiff_t leftmost_peer = -1;    // first peer edge
      std::ptrdiff_t rightmost_up = -1;     // last uphill edge
      for (std::size_t i = 0; i < num_edges; ++i) {
        Relationship rel = rels.get(hops[i], hops[i + 1]);
        bool is_peer = rel == Relationship::kPeerPeer;
        bool is_down = rel == Relationship::kProviderCustomer;
        bool is_up = rel == Relationship::kCustomerProvider;
        if ((is_peer || is_down) && leftmost_nonup < 0)
          leftmost_nonup = static_cast<std::ptrdiff_t>(i);
        if (is_peer && leftmost_peer < 0)
          leftmost_peer = static_cast<std::ptrdiff_t>(i);
        if (is_up) rightmost_up = static_cast<std::ptrdiff_t>(i);
      }
      if (leftmost_nonup >= 0) {
        for (std::size_t i = static_cast<std::size_t>(leftmost_nonup) + 1;
             i < num_edges; ++i)
          changed |= force_downhill(rels, hops[i], hops[i + 1]);
      }
      // A peer edge admits no peer/downhill edge before it: everything to
      // its left climbs.
      if (leftmost_peer >= 0) {
        for (std::size_t i = 0; i < static_cast<std::size_t>(leftmost_peer);
             ++i)
          changed |= force_uphill(rels, hops[i], hops[i + 1]);
      }
      if (rightmost_up >= 0) {
        for (std::size_t i = 0; i < static_cast<std::size_t>(rightmost_up);
             ++i)
          changed |= force_uphill(rels, hops[i], hops[i + 1]);
      }
    }
  }

  // Step 3: Gao-style degree vote for edges that are still unknown, plus a
  // peering phase: an edge that only ever appears at the top of paths and
  // whose endpoints have comparable degrees is classified peer-peer.
  struct Tally {
    std::uint32_t a_customer = 0;
    std::uint32_t b_customer = 0;
    std::uint32_t at_peak = 0;
    std::uint32_t appearances = 0;
  };
  std::map<std::pair<Asn, Asn>, Tally> votes;
  for (const AsPath& path : paths) {
    const auto& hops = path.hops();
    if (hops.size() < 2 || path.has_loop()) continue;
    std::size_t peak = 0;
    for (std::size_t i = 1; i < hops.size(); ++i) {
      if (graph.degree(hops[i]) > graph.degree(hops[peak])) peak = i;
    }
    for (std::size_t i = 0; i + 1 < hops.size(); ++i) {
      if (rels.get(hops[i], hops[i + 1]) != Relationship::kUnknown) continue;
      Asn a = std::min(hops[i], hops[i + 1]);
      Asn b = std::max(hops[i], hops[i + 1]);
      Tally& tally = votes[{a, b}];
      ++tally.appearances;
      if (i == peak || i + 1 == peak) ++tally.at_peak;
      bool uphill = i < peak;  // hops[i] customer of hops[i+1]
      bool a_first = a == hops[i];
      bool a_customer = uphill == a_first;
      if (a_customer) {
        ++tally.a_customer;
      } else {
        ++tally.b_customer;
      }
    }
  }
  for (auto& [edge, tally] : votes) {
    if (tally.appearances == 0) continue;
    const double total = tally.a_customer + tally.b_customer;
    const double deg_a = static_cast<double>(graph.degree(edge.first));
    const double deg_b = static_cast<double>(graph.degree(edge.second));
    const double ratio =
        deg_b == 0 ? 1e9 : std::max(deg_a, deg_b) / std::max(1.0, std::min(deg_a, deg_b));
    if (tally.at_peak == tally.appearances && ratio < 2.0) {
      rels.set(edge.first, edge.second, Relationship::kPeerPeer);
    } else if (tally.a_customer > 0 && tally.b_customer > 0 &&
               std::min(tally.a_customer, tally.b_customer) / total >
                   1.0 / 3.0) {
      rels.set(edge.first, edge.second, Relationship::kSibling);
    } else if (tally.a_customer >= tally.b_customer) {
      rels.set(edge.first, edge.second, Relationship::kCustomerProvider);
    } else {
      rels.set(edge.first, edge.second, Relationship::kProviderCustomer);
    }
  }
  return rels;
}

double valley_free_fraction(const RelationshipMap& rels,
                            std::span<const AsPath> paths) {
  if (paths.empty()) return 1.0;
  std::size_t ok = 0, considered = 0;
  for (const AsPath& path : paths) {
    const auto& hops = path.hops();
    if (hops.size() < 2 || path.has_loop()) continue;
    ++considered;
    // Reachable-state set over {UP, DOWN}; unknown/sibling edges wildcard.
    bool can_up = true, can_down = false;
    for (std::size_t i = 0; i + 1 < hops.size(); ++i) {
      Relationship rel = rels.get(hops[i], hops[i + 1]);
      bool up_edge = rel == Relationship::kCustomerProvider;
      bool peer_edge = rel == Relationship::kPeerPeer;
      bool down_edge = rel == Relationship::kProviderCustomer;
      bool wildcard =
          rel == Relationship::kUnknown || rel == Relationship::kSibling;
      bool next_up = false, next_down = false;
      if (up_edge || wildcard) next_up = can_up;
      if (peer_edge || down_edge || wildcard)
        next_down = can_up || can_down;
      // After a peer edge only downhill is allowed; peer from DOWN is a
      // valley, which the state machine already rejects (peer requires UP).
      if (peer_edge) next_down = can_up;
      can_up = next_up;
      can_down = next_down;
      if (!can_up && !can_down) break;
    }
    if (can_up || can_down) ++ok;
  }
  if (considered == 0) return 1.0;
  return static_cast<double>(ok) / static_cast<double>(considered);
}

}  // namespace topo
