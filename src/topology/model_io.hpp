// Text serialization of the quasi-router model, in the spirit of a C-BGP
// configuration script (the paper's models are "a class of topology models
// that can also be used as input to the C-BGP simulator", Section 4.1).
//
// Format (one directive per line, '#' comments):
//
//   model v1
//   router <asn>.<index>
//   session <asn>.<idx> <asn>.<idx>
//   igp <receiver> <sender> <cost>
//   class <asn> <neighbor-asn> customer|peer|provider
//   filter <prefix> <from> <to> <deny-below-len|all> [owner <router>]
//   ranking <prefix> <router> <preferred-asn>
//   lp-override <prefix> <router> <neighbor-asn> <local-pref>
//   export-allow <prefix> <from> <to>
//
// Deterministic output (sorted) so diffs of fitted models are meaningful.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "topology/model.hpp"

namespace topo {

void write_model(std::ostream& out, const Model& model);
std::string model_to_string(const Model& model);

/// Parses a model written by write_model; nullopt (and *error) on malformed
/// input.
std::optional<Model> read_model(std::istream& in, std::string* error = nullptr);
std::optional<Model> model_from_string(const std::string& text,
                                       std::string* error = nullptr);

}  // namespace topo
