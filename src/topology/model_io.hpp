// Text serialization of the quasi-router model, in the spirit of a C-BGP
// configuration script (the paper's models are "a class of topology models
// that can also be used as input to the C-BGP simulator", Section 4.1).
//
// Format (one directive per line, '#' comments):
//
//   model v1
//   router <asn>.<index>
//   session <asn>.<idx> <asn>.<idx>
//   igp <receiver> <sender> <cost>
//   class <asn> <neighbor-asn> customer|peer|provider
//   filter <prefix> <from> <to> <deny-below-len|all> [owner <router>]
//   ranking <prefix> <router> <preferred-asn>
//   lp-override <prefix> <router> <neighbor-asn> <local-pref>
//   export-allow <prefix> <from> <to>
//
// Deterministic output (sorted) so diffs of fitted models are meaningful.
//
// The same file also owns the refinement checkpoint format ("refine-
// checkpoint v1"), a header of loop/per-prefix state lines followed by a
// full "model v1" section:
//
//   refine-checkpoint v1
//   iteration <completed-iteration>
//   dataset-hash <16 hex digits>
//   messages <messages-simulated-so-far>
//   edits <routers-added> <policies-changed> <filters-relaxed>
//   prefix <origin> <state> <matched> <paths> <active-iters> <frozen-iter>
//          <best-matched> <hits> <freeze-countdown|->
//   fp <origin> <hex fingerprint>...        (oscillation ring, oldest first)
//   model v1
//   ...
//   end refine-checkpoint
//
// <state> is one of active|converged|oscillating|budget-exhausted (the
// PrefixOutcome tokens of core/refine).  The "end refine-checkpoint"
// trailer must be the final line: the model section has no length prefix,
// so the trailer is what turns any truncation into a detectable error
// instead of a silently shortened model.  save_refine_checkpoint is atomic:
// tmp + rename, so a crash mid-write never corrupts an existing checkpoint.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "topology/model.hpp"

namespace topo {

void write_model(std::ostream& out, const Model& model);
std::string model_to_string(const Model& model);

/// Parses a model written by write_model; nullopt (and *error) on malformed
/// input.
std::optional<Model> read_model(std::istream& in, std::string* error = nullptr);
std::optional<Model> model_from_string(const std::string& text,
                                       std::string* error = nullptr);

// ---- refinement checkpoints -------------------------------------------------

/// Serialized per-prefix loop state (core::refine_model's PrefixWork plus
/// its oscillation-detector state).  `state` carries the PrefixOutcome token
/// (see the format comment above); topology stays decoupled from core's
/// enum.
struct PrefixCheckpointState {
  nb::Asn origin = nb::kInvalidAsn;
  std::string state = "active";
  std::size_t matched = 0;
  std::size_t paths_total = 0;
  std::size_t active_iterations = 0;
  std::size_t frozen_iteration = 0;  // 0 = never frozen
  // Oscillation-detector state (core::OscillationDetector::State).
  std::size_t best_matched = 0;
  std::size_t hits = 0;
  bool freeze_pending = false;
  std::size_t freeze_countdown = 0;
  std::vector<std::uint64_t> fingerprints;  // recent ring, oldest first
};

/// Everything needed to resume a fit at the start of iteration
/// `iteration + 1` and still produce a byte-identical final model: the
/// mutated-so-far model, per-prefix progress, and the running counters that
/// feed RefineResult.  `dataset_hash` (core::dataset_fingerprint of the
/// training set) guards against resuming with different training data.
struct RefineCheckpoint {
  std::size_t iteration = 0;  // completed iterations
  std::uint64_t dataset_hash = 0;
  std::uint64_t messages_simulated = 0;
  std::size_t routers_added = 0;
  std::size_t policies_changed = 0;
  std::size_t filters_relaxed = 0;
  std::vector<PrefixCheckpointState> prefixes;
  Model model;
};

void write_refine_checkpoint(std::ostream& out, const RefineCheckpoint& ck);
/// Parses a checkpoint; nullopt (and *error with a line number) on any
/// malformed, truncated or version-mismatched input -- never throws.
std::optional<RefineCheckpoint> read_refine_checkpoint(
    std::istream& in, std::string* error = nullptr);

/// Atomic save: writes to `path` + ".tmp", flushes, then renames over
/// `path`.  On any failure the destination is untouched, the tmp file is
/// removed and *error describes the failure.
bool save_refine_checkpoint(const std::string& path,
                            const RefineCheckpoint& checkpoint,
                            std::string* error = nullptr);
std::optional<RefineCheckpoint> load_refine_checkpoint(
    const std::string& path, std::string* error = nullptr);

}  // namespace topo
