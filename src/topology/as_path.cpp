#include "topology/as_path.hpp"

#include <algorithm>

#include "netbase/strings.hpp"

namespace topo {

bool AsPath::has_loop() const {
  std::vector<Asn> sorted = hops_;
  std::sort(sorted.begin(), sorted.end());
  return std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end();
}

bool AsPath::contains(Asn asn) const {
  return std::find(hops_.begin(), hops_.end(), asn) != hops_.end();
}

AsPath AsPath::without_prepending() const {
  std::vector<Asn> out;
  out.reserve(hops_.size());
  for (Asn hop : hops_) {
    if (out.empty() || out.back() != hop) out.push_back(hop);
  }
  return AsPath{std::move(out)};
}

AsPath AsPath::suffix_from(std::size_t i) const {
  return AsPath{std::vector<Asn>(hops_.begin() + static_cast<std::ptrdiff_t>(i),
                                 hops_.end())};
}

bool AsPath::matches_route_path(std::span<const Asn> route_path) const {
  if (hops_.empty() || route_path.size() + 1 != hops_.size()) return false;
  return std::equal(route_path.begin(), route_path.end(), hops_.begin() + 1);
}

std::optional<AsPath> AsPath::parse(std::string_view text) {
  std::vector<Asn> hops;
  for (auto token : nb::split_ws(text)) {
    // Accept '-' separated tokens as well.
    for (auto part : nb::split(token, '-')) {
      auto value = nb::parse_u64(part);
      if (!value || *value > 0xfffffffeull) return std::nullopt;
      hops.push_back(static_cast<Asn>(*value));
    }
  }
  if (hops.empty()) return std::nullopt;
  return AsPath{std::move(hops)};
}

std::string AsPath::str() const {
  std::string out;
  for (std::size_t i = 0; i < hops_.size(); ++i) {
    if (i > 0) out.push_back(' ');
    out += std::to_string(hops_[i]);
  }
  return out;
}

std::size_t AsPathHash::operator()(const AsPath& path) const noexcept {
  return (*this)(std::span<const Asn>(path.hops()));
}

std::size_t AsPathHash::operator()(std::span<const Asn> hops) const noexcept {
  std::uint64_t h = 0x9e3779b97f4a7c15ull;
  for (Asn hop : hops) {
    h ^= hop + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  }
  return static_cast<std::size_t>(h);
}

}  // namespace topo
