// rdtool -- command-line front end for the route-diversity library.
//
// Subcommands (all file formats are the library's text formats, see
// data/rib_io.hpp and topology/model_io.hpp):
//
//   rdtool generate --out feeds.dump [--scale S] [--seed N] [--raw]
//              [--updates N --updates-out stream.upd]
//       Generate a synthetic Internet, observe it and write the (stub-
//       reduced unless --raw) RIB dump; optionally also simulate N
//       single-session failures and write the update stream.
//
//   rdtool info --dataset feeds.dump | --model fitted.model
//       Summarize a dump or a model.
//
//   rdtool refine --dataset feeds.dump --out fitted.model
//              [--training-fraction F] [--split-seed N] [--all]
//              [--updates stream.upd]
//              [--checkpoint ck [--checkpoint-every N]] [--resume ck]
//              [--budget-seconds S] [--prefix-budget N]
//       Split the feeds by observation point, fit the quasi-router model to
//       the training side (--all: to every record) and write it.  SIGINT/
//       SIGTERM interrupt the fit cleanly (exit 130): with --checkpoint a
//       resumable checkpoint lands on disk and a later --resume run
//       continues the fit, producing a byte-identical final model to an
//       uninterrupted one.  --budget-seconds / --prefix-budget bound the fit;
//       on exhaustion (or a confirmed refinement oscillation, R700) the
//       affected prefixes freeze and the fit completes degraded (exit 3)
//       with per-prefix outcomes in the log and in --json.
//
//   rdtool predict --dataset feeds.dump --model fitted.model
//              [--training-fraction F] [--split-seed N] [--validation-only]
//       Evaluate the model's predictions with the Section 4.2 metrics.
//
//   rdtool whatif --model fitted.model --remove-link A:B [--prefixes N]
//       Predict the routing impact of removing an AS link.
//
//   rdtool explain --model fitted.model --origin O --as A
//       Show every quasi-router's decision at AS A for O's prefix.
//
//   rdtool lint --model fitted.model [--fitted] [--json]
//          | --generated [--scale S] [--seed N]
//          | --fixture NAME | --list-fixtures
//       Run the model linter (analysis::validate_model) and print structured
//       diagnostics.  --fitted adds the refinement-closure and agnosticism
//       checks.  --generated lints the one-quasi-router-per-AS model of a
//       freshly generated topology.  --fixture lints a deliberately
//       corrupted in-process model (ctest asserts these fail).
//
//   rdtool audit --model fitted.model [--origin N] [--json]
//          | --generated [--scale S] [--seed N]
//          | --fixture NAME | --list-fixtures
//       Run the static policy auditor (analysis::audit_model): dispute-wheel
//       safety (S5xx), dead policies (D6xx) and per-prefix route-diversity
//       bounds, all without simulation.  --generated audits the ground-truth
//       model of a freshly generated topology under its relationship
//       policies.  --fixture audits a deliberately unsafe/wasteful in-process
//       model (ctest asserts these fail).
//
//   rdtool diff A.model B.model [--origin N] [--a-raw] [--b-raw]
//              [--threads N] [--json]
//       Static model diff (analysis::diff_models): compares the per-router
//       abstract route sets of the two models per prefix -- proving
//       equivalence or naming the differing routers (A810) and structural
//       deltas (A811) without simulating either model.  Engine
//       interpretation per side is auto-detected (relationship policies /
//       IGP costs switch on when the model carries classes / costs);
//       --a-raw / --b-raw force the plain fitted-model interpretation.
//       A model diffed against itself exits 0 with no findings.
//
//   rdtool impact --model F --edit session-down --session A.I:B.J
//          | --edit policy-change --router A.I --origin N [--prefer ASN]
//          | --edit filter-edit --session A.I:B.J --origin N [--deny-below L]
//          [--origin N] [--json]
//       Static edit-impact set (analysis::compute_impact): the routers whose
//       steady-state selection MAY change under the edit, per prefix --
//       the dirty frontier an incremental re-fit has to re-simulate.
//
//   rdtool stats TRACE [--json]
//       Summarize a refinement trace (written by refine --trace) into a
//       Table-3-style per-iteration convergence table plus a phase-time
//       breakdown.  Accepts both the Chrome trace_event and the JSONL form.
//
//   rdtool profile TRACE [--json]
//       Sweep profiler (DESIGN.md section 14): read the per-shard worker
//       spans of a refine --trace run (trace level iteration or above),
//       attribute parallel speedup loss to imbalance vs idle vs serial
//       sections, and score the static cost model by the rank correlation
//       of predicted vs measured shard cost.
//
//   rdtool selftest [--dir DIR]
//       End-to-end smoke test over real files (used by ctest).
//
// refine, predict and audit additionally take the observability flags
//   --trace FILE [--trace-level off|phase|iteration|prefix] --metrics FILE
// (DESIGN.md section 9): --trace writes Chrome trace_event JSON -- load it
// in Perfetto / chrome://tracing, or summarize with `rdtool stats` -- or
// JSONL when FILE ends in .jsonl; --metrics writes the metric registry as
// JSON.  Observation never changes results: fitted models are byte-
// identical with and without these flags.
//
// refine additionally keeps a flight recorder attached by default
// (DESIGN.md section 14): a lock-free per-worker event ring whose contents
// are dumped to MODEL.flight.json (override: --flight-dump F; capacity:
// --flight-capacity N; off: --no-flight-recorder) whenever the fit ends
// degraded or faulted, so a bad run always leaves a post-mortem.
//
// Exit codes for lint, audit and refine are uniform; the single source of
// truth is kExitCodeTable below (printed by `rdtool help`).  Other
// subcommands exit 0 on success and non-zero on failure.
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <thread>

#include "analysis/fixtures.hpp"
#include "bgp/threadpool.hpp"
#include "analysis/impact.hpp"
#include "analysis/model_diff.hpp"
#include "analysis/partition.hpp"
#include "analysis/policy_audit.hpp"
#include "analysis/reachability_cache.hpp"
#include "analysis/validate_model.hpp"
#include "analysis/workset.hpp"
#include "bgp/explain.hpp"
#include "core/fault_inject.hpp"
#include "core/pipeline.hpp"
#include "core/predict.hpp"
#include "core/report.hpp"
#include "core/whatif.hpp"
#include "data/dataset_stats.hpp"
#include "data/dynamics.hpp"
#include "data/rib_io.hpp"
#include "netbase/cli.hpp"
#include "netbase/fsio.hpp"
#include "netbase/json.hpp"
#include "netbase/strings.hpp"
#include "netbase/sysinfo.hpp"
#include "netbase/table.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/flush.hpp"
#include "obs/observer.hpp"
#include "obs/profiler.hpp"
#include "serve/server.hpp"
#include "topology/model_io.hpp"

namespace {

/// The lint/audit exit-code contract, in one place (header comment and
/// print_help both defer here).
constexpr char kExitCodeTable[] =
    "exit codes (lint, audit):\n"
    "  0  clean: no diagnostics at all\n"
    "  1  diagnostics found (any severity)\n"
    "  2  usage or I/O error\n"
    "exit codes (diff):\n"
    "  0  no differences (A801 truncation notes may still print)\n"
    "  1  models differ (A810 route sets or A811 structure)\n"
    "  2  usage or I/O error\n"
    "exit codes (impact):\n"
    "  0  impact set computed (possibly empty)\n"
    "  2  usage or I/O error\n"
    "exit codes (plan):\n"
    "  0  shard plan emitted (A820/A821 advisories may print)\n"
    "  2  usage or I/O error\n"
    "exit codes (profile):\n"
    "  0  profile report produced\n"
    "  1  trace has no sweep shard spans (not a sharded refine trace)\n"
    "  2  usage or I/O error\n"
    "exit codes (refine):\n"
    "  0  fit converged: every training path RIB-Out matched\n"
    "  1  I/O error, resume mismatch or unrecoverable fault\n"
    "  2  usage error\n"
    "  3  fit completed degraded: oscillating or budget-exhausted\n"
    "     prefixes were frozen, or the iteration cap left paths unmatched\n"
    "  130  interrupted (SIGINT/SIGTERM); resume with --resume\n"
    "exit codes (serve):\n"
    "  0  drained cleanly after SIGINT/SIGTERM (or --once answered ok/\n"
    "     degraded/rejected)\n"
    "  1  model unreadable, bind or artifact-flush failure, or --once\n"
    "     answered status \"error\"\n"
    "  2  usage error\n"
    "other subcommands exit 0 on success, non-zero on failure;\n"
    "see the header of tools/rdtool.cpp for details\n";

void print_help(std::FILE* out) {
  std::fprintf(
      out,
      "usage: rdtool <generate|info|refine|predict|whatif|explain|"
      "lint|audit|diff|impact|plan|stats|profile|serve|selftest|help> "
      "[options]\n"
      "\n"
      "  generate  write a synthetic RIB dump (--out F [--scale S --seed N\n"
      "            --model-out F: also write the ground-truth model])\n"
      "  info      summarize --dataset F or --model F\n"
      "  refine    fit a quasi-router model (--dataset F --out F\n"
      "            [--threads N] [--json]); the parallel sweep yields the\n"
      "            same model for every thread count.  Fault tolerance:\n"
      "            --checkpoint F [--checkpoint-every N] --resume F\n"
      "            --budget-seconds S --prefix-budget N; SIGINT checkpoints\n"
      "            and exits 130, --resume continues to a byte-identical\n"
      "            final model\n"
      "  predict   evaluate a model (--dataset F --model F)\n"
      "  whatif    impact of removing a link (--model F --remove-link A:B)\n"
      "  explain   per-router decisions (--model F --origin O --as A)\n"
      "  lint      structural model linter (--model F [--fitted] | "
      "--generated | --fixture NAME | --list-fixtures) [--json]\n"
      "  audit     static policy auditor: dispute-wheel safety, dead\n"
      "            policies, diversity bounds (--model F [--origin N] | "
      "--generated | --fixture NAME | --list-fixtures)\n"
      "            [--blackholes] [--threads N] [--json]\n"
      "  diff      static model diff over abstract route sets\n"
      "            (rdtool diff A.model B.model [--origin N] [--a-raw]\n"
      "            [--b-raw] [--threads N] [--json])\n"
      "  impact    static edit-impact set (--model F --edit\n"
      "            session-down|policy-change|filter-edit\n"
      "            [--session A.I:B.J] [--router A.I] [--origin N]\n"
      "            [--prefer ASN] [--deny-below L] [--json])\n"
      "  plan      static working-set & shard plan: per-prefix working\n"
      "            sets, cost model, balanced prefix partition\n"
      "            (--model F | --generated [--scale S --seed N])\n"
      "            [--shards N] [--no-exact] [--json]; deterministic for\n"
      "            identical inputs\n"
      "  stats     summarize a refinement trace (rdtool stats TRACE):\n"
      "            per-iteration convergence table + phase timings\n"
      "  profile   sweep profiler (rdtool profile TRACE [--json]):\n"
      "            per-worker busy/idle lanes, speedup-loss attribution\n"
      "            (imbalance vs idle vs serial) and predicted-vs-measured\n"
      "            shard-cost rank correlation from a refine --trace run\n"
      "  serve     long-lived route-prediction daemon (--model F [--port P]\n"
      "            [--port-file F] [--threads N] [--queue-capacity N]\n"
      "            [--deadline-seconds S] [--drain-seconds S]\n"
      "            [--whatif-origins N] [--once REQUEST]); length-prefixed\n"
      "            JSON protocol, SIGTERM drains and exits 0 (see DESIGN.md\n"
      "            section 15)\n"
      "  selftest  end-to-end smoke test over real files (--dir D)\n"
      "\n"
      "refine/predict/audit observability: --trace FILE writes Chrome\n"
      "trace_event JSON (Perfetto-loadable; JSONL when FILE ends in .jsonl)\n"
      "at --trace-level off|phase|iteration|prefix (default iteration);\n"
      "--metrics FILE writes the metric registry as JSON.  Results are\n"
      "byte-identical with and without observability attached.\n"
      "\n"
      "refine keeps a flight recorder on by default; a degraded or faulted\n"
      "fit dumps a post-mortem to MODEL.flight.json (--flight-dump F,\n"
      "--flight-capacity N, --no-flight-recorder)\n"
      "\n"
      "--threads 0 selects the hardware thread count; refine/audit --json\n"
      "reports include wall-clock phase timings\n"
      "\n"
      "%s",
      kExitCodeTable);
}

int usage() {
  print_help(stderr);
  return 2;
}

/// Set by the SIGINT/SIGTERM handlers installed around refine_model; the
/// loop polls it between iterations, checkpoints and returns kInterrupted.
std::atomic<bool> g_interrupt{false};

void handle_interrupt(int) { g_interrupt.store(true); }

/// Process-wide reachability-bound cache shared by every command that
/// computes working sets (`plan`, `refine`'s shard scheduler and compacted
/// sweep).  Generation-keyed per model, so commands running back to back
/// in one process -- the selftest, library embedders calling the cmd_*
/// flows -- reuse each other's session BFS results instead of recomputing
/// them; a stale entry is just a miss.
analysis::ReachabilityCache g_reach_cache;

std::optional<data::BgpDataset> load_dataset(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "rdtool: cannot open dataset %s\n", path.c_str());
    return std::nullopt;
  }
  std::string error;
  auto dataset = data::read_dataset(in, &error);
  if (!dataset)
    std::fprintf(stderr, "rdtool: %s: %s\n", path.c_str(), error.c_str());
  return dataset;
}

std::optional<topo::Model> load_model(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "rdtool: cannot open model %s\n", path.c_str());
    return std::nullopt;
  }
  std::string error;
  auto model = topo::read_model(in, &error);
  if (!model)
    std::fprintf(stderr, "rdtool: %s: %s\n", path.c_str(), error.c_str());
  return model;
}

bool write_file(const std::string& path, const std::string& contents) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "rdtool: cannot write %s\n", path.c_str());
    return false;
  }
  out << contents;
  return true;
}

/// write_file through a sibling temp file + rename (nb::write_file_atomic),
/// so the target path never holds a partial document -- even when the
/// process dies mid-write (the second-SIGINT-during-flush case
/// observability artifacts care about: a truncated trace is unloadable, no
/// trace is just absent).
bool write_file_atomic(const std::string& path, const std::string& contents) {
  std::string error;
  if (!nb::write_file_atomic(path, contents, &error)) {
    std::fprintf(stderr, "rdtool: %s\n", error.c_str());
    return false;
  }
  return true;
}

/// Shared --trace / --metrics / --trace-level plumbing for refine, predict
/// and audit.  Owns the optional sinks and writes the artifacts at the end
/// of the command; when neither flag is given nothing is constructed and
/// the commands run the zero-observer paths.
struct ObsSession {
  std::string trace_path;
  std::string metrics_path;
  std::optional<obs::Registry> registry;
  std::optional<obs::TraceSink> trace;
  obs::Observer observer;

  bool attached() const { return registry.has_value() || trace.has_value(); }
  obs::Registry* reg() { return registry.has_value() ? &*registry : nullptr; }
  obs::TraceSink* sink() { return trace.has_value() ? &*trace : nullptr; }

  /// False on a malformed --trace-level (usage error).
  bool init(const nb::Cli& cli, std::string_view process_name) {
    trace_path = cli.get_string("trace", "");
    metrics_path = cli.get_string("metrics", "");
    obs::TraceLevel level = obs::TraceLevel::kIteration;
    const std::string level_text = cli.get_string("trace-level", "");
    if (!level_text.empty() && !obs::parse_trace_level(level_text, &level)) {
      std::fprintf(stderr,
                   "rdtool: bad --trace-level %s "
                   "(off|phase|iteration|prefix)\n",
                   level_text.c_str());
      return false;
    }
    if (!metrics_path.empty()) {
      registry.emplace();
      observer.registry = &*registry;
    }
    if (!trace_path.empty()) {
      trace.emplace(level);
      trace->name_process(process_name);
      observer.trace = &*trace;
    }
    return true;
  }

  /// Writes whichever artifacts were requested -- plus `flight`, when the
  /// caller wants the flight ring published on this exit edge -- through
  /// the shared atomic flush path (obs::flush_observability, temp +
  /// rename): an interrupt or crash during the flush leaves either the
  /// complete file or no file, never truncated JSON that `rdtool stats` /
  /// Perfetto would choke on.  False on any I/O error (all artifacts are
  /// still attempted).
  bool flush(const obs::FlightRecorder* flight = nullptr,
             const std::string& flight_path = std::string()) {
    obs::FlushPlan plan;
    if (trace.has_value()) {
      plan.trace = &*trace;
      plan.trace_path = trace_path;
    }
    if (registry.has_value()) {
      plan.registry = &*registry;
      plan.metrics_path = metrics_path;
    }
    plan.flight = flight;
    plan.flight_path = flight_path;
    const obs::FlushResult result = obs::flush_observability(plan);
    if (result.trace_written)
      std::fprintf(stderr, "rdtool: wrote %zu trace events to %s\n",
                   trace->size(), trace_path.c_str());
    if (result.metrics_written)
      std::fprintf(stderr, "rdtool: wrote metrics to %s\n",
                   metrics_path.c_str());
    if (result.flight_written)
      std::fprintf(stderr, "rdtool: wrote flight dump to %s\n",
                   flight_path.c_str());
    if (!result.ok())
      std::fprintf(stderr, "rdtool: %s\n", result.error.c_str());
    return result.ok();
  }
};

int cmd_generate(const nb::Cli& cli) {
  const std::string out_path = cli.get_string("out", "");
  if (out_path.empty()) return usage();
  core::PipelineConfig config = core::PipelineConfig::with(
      cli.get_double("scale", 0.5), cli.get_u64("seed", 1));
  core::Pipeline pipeline = core::make_pipeline(config);
  core::run_data_stages(pipeline);
  const data::BgpDataset& dataset =
      cli.get_bool("raw") ? pipeline.raw_dataset : pipeline.dataset;
  if (!write_file(out_path, data::dataset_to_string(dataset))) return 1;
  std::printf("wrote %zu records from %zu feeds to %s\n",
              dataset.records.size(), dataset.points.size(),
              out_path.c_str());

  if (cli.has("model-out")) {
    // The ground-truth model serializes like any fitted one; used by the
    // diff CI gate (fitted vs ground truth) and handy for inspection.
    std::ostringstream model_text;
    topo::write_model(model_text, pipeline.ground_truth.model);
    const std::string model_out = cli.get_string("model-out", "");
    if (!write_file(model_out, model_text.str())) return 1;
    std::printf("wrote ground-truth model (%zu routers) to %s\n",
                pipeline.ground_truth.model.num_routers(), model_out.c_str());
  }

  if (cli.has("updates-out")) {
    data::DynamicsConfig dynamics;
    dynamics.num_events = cli.get_u64("updates", 16);
    bgp::ThreadPool pool(1);
    // Diff against the RAW feeds; update paths are reduced on merge.
    auto stream = data::simulate_session_failures(
        pipeline.ground_truth, pipeline.raw_dataset, dynamics, pool);
    std::ostringstream out;
    data::write_updates(out, stream);
    const std::string updates_path = cli.get_string("updates-out", "");
    if (!write_file(updates_path, out.str())) return 1;
    std::printf("wrote %zu events / %zu updates to %s\n",
                stream.events.size(), stream.updates.size(),
                updates_path.c_str());
  }
  return 0;
}

int cmd_info(const nb::Cli& cli) {
  if (cli.has("dataset")) {
    auto dataset = load_dataset(cli.get_string("dataset", ""));
    if (!dataset) return 1;
    auto stats = data::compute_diversity(*dataset);
    std::printf("feeds: %zu   observation ASes: %zu (multi-feed %zu)\n",
                dataset->points.size(), dataset->observation_ases().size(),
                dataset->multi_feed_ases());
    std::printf("records: %zu   unique paths: %zu   AS pairs: %zu\n",
                dataset->records.size(), stats.unique_paths, stats.as_pairs);
    std::printf("AS pairs with >1 distinct path: %s\n",
                nb::fmt_percent(stats.paths_per_pair.fraction_at_least(2))
                    .c_str());
    return 0;
  }
  if (cli.has("model")) {
    auto model = load_model(cli.get_string("model", ""));
    if (!model) return 1;
    auto stats = model->policy_stats();
    std::size_t multi = 0;
    for (auto& [asn, count] : model->router_counts())
      if (count > 1) ++multi;
    std::printf("ASes: %zu   quasi-routers: %zu (multi-router ASes: %zu)   "
                "sessions: %zu\n",
                model->num_ases(), model->num_routers(), multi,
                model->num_sessions());
    std::printf("policies: %zu filters, %zu rankings, %zu lp-overrides, "
                "%zu export-allows over %zu prefixes\n",
                stats.filters, stats.rankings, stats.lp_overrides,
                stats.export_allows, stats.prefixes_with_policy);
    return 0;
  }
  return usage();
}

int cmd_refine(const nb::Cli& cli) {
  // Absent flags are usage errors (2); an unreadable dataset is I/O (1).
  if (!cli.has("dataset") || !cli.has("out")) return usage();
  auto dataset = load_dataset(cli.get_string("dataset", ""));
  if (!dataset) return 1;
  const std::string out_path = cli.get_string("out", "");

  data::BgpDataset training = *dataset;
  if (!cli.get_bool("all")) {
    data::SplitConfig split_config;
    split_config.seed = cli.get_u64("split-seed", 4);
    split_config.training_fraction =
        cli.get_double("training-fraction", 2.0 / 3.0);
    training = data::split_by_points(*dataset, split_config).training;
  }
  if (cli.has("updates")) {
    std::ifstream in(cli.get_string("updates", ""));
    std::string error;
    auto stream = data::read_updates(in, &error);
    if (!stream) {
      std::fprintf(stderr, "rdtool: updates: %s\n", error.c_str());
      return 1;
    }
    const std::size_t before = training.records.size();
    training = stream->merge_into(training);
    std::printf("merged update stream: %zu -> %zu training records\n",
                before, training.records.size());
  }

  auto graph = topo::AsGraph::from_paths(dataset->all_paths());
  topo::Model model = topo::Model::one_router_per_as(graph);
  core::RefineConfig config;
  config.verbose = cli.get_bool("verbose");
  // 0 = hardware concurrency; the fitted model is identical for every
  // thread count (see refine.hpp), so this is purely a speed knob.
  config.threads = static_cast<unsigned>(cli.get_u64("threads", 1));
  config.wall_clock_budget_seconds = cli.get_double("budget-seconds", 0);
  config.prefix_iteration_budget = cli.get_u64("prefix-budget", 0);
  config.checkpoint_path = cli.get_string("checkpoint", "");
  config.checkpoint_every = cli.get_u64("checkpoint-every", 8);
  config.reachability_cache = &g_reach_cache;

  // --resume: the checkpoint replaces the fresh one-router-per-AS start;
  // refine_model verifies the dataset hash and per-prefix state (R706).
  std::optional<topo::RefineCheckpoint> checkpoint;
  if (cli.has("resume")) {
    const std::string resume_path = cli.get_string("resume", "");
    std::string error;
    checkpoint = topo::load_refine_checkpoint(resume_path, &error);
    if (!checkpoint) {
      std::fprintf(stderr, "rdtool: %s: %s\n", resume_path.c_str(),
                   error.c_str());
      return 1;
    }
    model = checkpoint->model;
    config.resume = &*checkpoint;
    // Keep checkpointing to the same file unless redirected.
    if (config.checkpoint_path.empty()) config.checkpoint_path = resume_path;
    std::fprintf(stderr, "rdtool: resuming from %s after iteration %zu\n",
                 resume_path.c_str(), checkpoint->iteration);
  }

  core::FaultPlan fault_plan;
#ifdef RD_FAULT_INJECTION
  // Deterministic stand-in for a real SIGINT (CI and the selftest use it to
  // exercise the interrupt path without signal timing races).
  if (cli.has("interrupt-after")) {
    fault_plan.interrupt_iteration = cli.get_u64("interrupt-after", 0);
    config.fault_plan = &fault_plan;
  }
#else
  (void)fault_plan;
#endif

  ObsSession obs_session;
  if (!obs_session.init(cli, "rdtool refine")) return 2;
  if (obs_session.attached()) config.observer = &obs_session.observer;

  // Flight recorder (DESIGN.md section 14): on by default -- the per-event
  // cost is one ring-slot write, and a degraded or faulted fit then always
  // leaves a post-mortem dump next to the model.  --no-flight-recorder
  // opts out; --flight-dump redirects the dump path.
  std::optional<obs::FlightRecorder> flight;
  if (!cli.get_bool("no-flight-recorder")) {
    // Track count must cover every sweep worker; resolve() maps the
    // --threads request (0 = hardware) the same way the pool will.
    const unsigned workers = bgp::ThreadPool::resolve(config.threads);
    flight.emplace(2 + workers,
                   cli.get_u64("flight-capacity",
                               obs::FlightRecorder::kDefaultCapacity));
    config.flight_recorder = &*flight;
    config.flight_dump_path =
        cli.get_string("flight-dump", out_path + ".flight.json");
  }

  g_interrupt.store(false);
  config.interrupt = &g_interrupt;
  auto prev_int = std::signal(SIGINT, handle_interrupt);
  auto prev_term = std::signal(SIGTERM, handle_interrupt);
  auto result = core::refine_model(model, training, config);
  // Flush observability BEFORE restoring the default signal disposition
  // and before any early return below: with the handlers still installed a
  // second SIGINT stays cooperative instead of killing the process during
  // a long trace write, and the flush itself is atomic (temp + rename), so
  // an interrupted fit always leaves loadable artifacts.  An interrupted
  // fit also publishes the flight rings (refine_model itself only dumps on
  // degraded/faulted stops): the 130 edge is exactly where a post-mortem
  // of the final iterations is wanted.
  const bool dump_flight_here =
      flight.has_value() && !result.flight_dump_written &&
      result.stop == core::RefineStop::kInterrupted &&
      !config.flight_dump_path.empty();
  const bool obs_flushed =
      obs_session.flush(dump_flight_here ? &*flight : nullptr,
                        dump_flight_here ? config.flight_dump_path : "");
  if (dump_flight_here && obs_flushed) result.flight_dump_written = true;
  std::signal(SIGINT, prev_int);
  std::signal(SIGTERM, prev_term);

  const bool interrupted = result.stop == core::RefineStop::kInterrupted;
  if (result.stop == core::RefineStop::kFault) {
    // Resume mismatch or an unrecoverable sweep fault: the diagnostics say
    // what happened; any partial state was already checkpointed.
    std::fprintf(stderr, "%s",
                 analysis::render_diagnostics(result.diagnostics).c_str());
    return 1;
  }
  // An interrupted fit leaves no --out model: the partial state lives in
  // the checkpoint, and a half-refined model file would be easy to mistake
  // for a finished one.
  if (!interrupted && !write_file(out_path, topo::model_to_string(model)))
    return 1;
  if (!obs_flushed) return 1;
  if (cli.get_bool("json")) {
    // Single JSON object on stdout; the model still lands in --out.
    nb::JsonWriter w;
    w.begin_object();
    w.key("tool").value("refine");
    w.key("success").value(result.success);
    w.key("stop").value(core::refine_stop_name(result.stop));
    w.key("degraded").value(result.degraded());
    w.key("iterations").value(static_cast<std::uint64_t>(result.iterations));
    w.key("unmatched_paths")
        .value(static_cast<std::uint64_t>(result.unmatched_paths));
    w.key("routers").value(static_cast<std::uint64_t>(model.num_routers()));
    w.key("messages_simulated").value(result.messages_simulated);
    w.key("threads").value(result.threads_used);
    w.key("prefixes_converged")
        .value(static_cast<std::uint64_t>(result.prefixes_converged));
    w.key("prefixes_oscillating")
        .value(static_cast<std::uint64_t>(result.prefixes_oscillating));
    w.key("prefixes_budget_exhausted")
        .value(static_cast<std::uint64_t>(result.prefixes_budget_exhausted));
    w.key("checkpoint_written").value(result.checkpoint_written);
    w.key("sharded_iterations").value(result.sharded_iterations);
    w.key("cache").begin_object();
    w.key("hits").value(result.cache_hits);
    w.key("misses").value(result.cache_misses);
    w.key("invalidations").value(result.cache_invalidations);
    w.end_object();
    w.key("flight_dump_written").value(result.flight_dump_written);
    if (result.flight_dump_written)
      w.key("flight_dump").value(config.flight_dump_path);
    w.key("outcomes").begin_array();
    for (const core::PrefixFitOutcome& o : result.outcomes) {
      // The converged majority is summarized by prefixes_converged; listing
      // only the exceptions keeps the report small at full scale.
      if (o.outcome == core::PrefixOutcome::kConverged) continue;
      w.begin_object();
      w.key("origin").value(static_cast<std::uint64_t>(o.origin));
      w.key("outcome").value(core::prefix_outcome_name(o.outcome));
      w.key("matched").value(static_cast<std::uint64_t>(o.matched));
      w.key("paths_total").value(static_cast<std::uint64_t>(o.paths_total));
      w.key("frozen_iteration")
          .value(static_cast<std::uint64_t>(o.frozen_iteration));
      w.end_object();
    }
    w.end_array();
    w.key("phase_seconds").begin_object();
    w.key("simulate").value_fixed(result.phase_seconds.simulate, 6);
    w.key("heuristic").value_fixed(result.phase_seconds.heuristic, 6);
    w.key("validate").value_fixed(result.phase_seconds.validate, 6);
    w.key("total").value_fixed(result.phase_seconds.total, 6);
    w.end_object();
    w.key("peak_rss_bytes").value(nb::peak_rss_bytes());
    w.end_object();
    std::printf("%s\n", w.str().c_str());
  } else {
    std::printf("%s", core::render_refine_log(result).c_str());
    if (!result.diagnostics.empty())
      std::printf("%s",
                  analysis::render_diagnostics(result.diagnostics).c_str());
    std::printf("fit took %.3fs (simulate %.3fs, heuristic %.3fs) on %u "
                "thread(s), %llu messages\n",
                result.phase_seconds.total, result.phase_seconds.simulate,
                result.phase_seconds.heuristic, result.threads_used,
                static_cast<unsigned long long>(result.messages_simulated));
    if (!interrupted)
      std::printf("wrote model (%zu quasi-routers) to %s\n",
                  model.num_routers(), out_path.c_str());
  }
  if (interrupted) {
    if (result.checkpoint_written)
      std::fprintf(stderr,
                   "rdtool: interrupted after iteration %zu; resume with "
                   "--resume %s\n",
                   result.iterations, config.checkpoint_path.c_str());
    else
      std::fprintf(stderr,
                   "rdtool: interrupted after iteration %zu (no --checkpoint "
                   "given, progress discarded)\n",
                   result.iterations);
    return 130;
  }
  return result.success && !result.degraded() ? 0 : 3;
}

int cmd_predict(const nb::Cli& cli) {
  auto dataset = load_dataset(cli.get_string("dataset", ""));
  auto model = load_model(cli.get_string("model", ""));
  if (!dataset || !model) return 1;

  data::BgpDataset target = *dataset;
  std::string title = "all records";
  if (cli.get_bool("validation-only")) {
    data::SplitConfig split_config;
    split_config.seed = cli.get_u64("split-seed", 4);
    split_config.training_fraction =
        cli.get_double("training-fraction", 2.0 / 3.0);
    target = data::split_by_points(*dataset, split_config).validation;
    title = "validation records (held-out feeds)";
  }
  ObsSession obs_session;
  if (!obs_session.init(cli, "rdtool predict")) return 2;
  obs::Registry* reg = obs_session.reg();
  obs::TraceSink* sink = obs_session.sink();

  core::EvalOptions options;
  core::EvalResult eval;
  {
    obs::CounterId total_ns;
    if (reg != nullptr) total_ns = reg->counter("predict.phase.total_ns");
    obs::PhaseTimer timer(reg, total_ns, sink, "predict");
    eval = core::evaluate_predictions(*model, target, options);
  }
  if (reg != nullptr) {
    const core::MatchStats& s = eval.stats;
    reg->add(reg->counter("predict.paths_total"), s.total);
    reg->add(reg->counter("predict.rib_out"), s.rib_out);
    reg->add(reg->counter("predict.potential_rib_out"), s.potential_rib_out);
    reg->add(reg->counter("predict.rib_in_only"), s.rib_in_only);
    reg->add(reg->counter("predict.not_available"), s.not_available);
    reg->add(reg->counter("predict.prefixes"), s.prefixes);
    // Same decision-step axis as refine's engine.eliminated.<step>.
    for (std::size_t step = 0; step < bgp::kNumDecisionSteps; ++step) {
      reg->add(reg->counter(
                   std::string("predict.lost_at.") +
                   bgp::decision_step_name(static_cast<bgp::DecisionStep>(
                       step))),
               s.lost_at[step]);
    }
  }
  if (sink != nullptr && sink->enabled(obs::TraceLevel::kIteration)) {
    nb::JsonWriter args;
    args.begin_object();
    args.key("paths_total").value(static_cast<std::uint64_t>(eval.stats.total));
    args.key("rib_out").value(static_cast<std::uint64_t>(eval.stats.rib_out));
    args.key("potential_rib_out")
        .value(static_cast<std::uint64_t>(eval.stats.potential_rib_out));
    args.key("prefixes").value(static_cast<std::uint64_t>(eval.stats.prefixes));
    args.end_object();
    sink->instant("predict", "match_stats", sink->now_us(), 0, args.str());
  }
  if (!obs_session.flush()) return 1;
  std::printf("%s", core::render_validation(title, eval.stats).c_str());
  return 0;
}

std::optional<std::pair<nb::Asn, nb::Asn>> parse_link(std::string_view text) {
  auto colon = text.find(':');
  if (colon == std::string_view::npos) return std::nullopt;
  auto a = nb::parse_u64(text.substr(0, colon));
  auto b = nb::parse_u64(text.substr(colon + 1));
  if (!a || !b) return std::nullopt;
  return std::make_pair(static_cast<nb::Asn>(*a), static_cast<nb::Asn>(*b));
}

int cmd_whatif(const nb::Cli& cli) {
  auto model = load_model(cli.get_string("model", ""));
  if (!model) return 1;
  auto link = parse_link(cli.get_string("remove-link", ""));
  if (!link) {
    std::fprintf(stderr, "rdtool: --remove-link A:B required\n");
    return usage();
  }
  core::WhatIfScenario scenario;
  scenario.remove_as_links.push_back(*link);
  std::vector<nb::Asn> origins = model->asns();
  const std::size_t limit = cli.get_u64("prefixes", 50);
  if (origins.size() > limit) origins.resize(limit);
  auto result = core::evaluate_whatif(*model, scenario, origins);
  std::printf("prefixes evaluated: %zu   (prefix, AS) pairs: %zu\n",
              result.prefixes_evaluated, result.pairs_evaluated);
  std::printf("changed: %zu   lost reachability: %zu   gained: %zu\n",
              result.pairs_changed, result.pairs_lost_reachability,
              result.pairs_gained_reachability);
  std::size_t shown = 0;
  for (const auto& change : result.changes) {
    if (++shown > cli.get_u64("show", 10)) break;
    std::printf("AS %u, prefix of AS %u:\n", change.observer, change.origin);
    for (const auto& path : change.before) {
      std::string text;
      for (nb::Asn hop : path) text += std::to_string(hop) + " ";
      std::printf("  before: %s\n", text.c_str());
    }
    for (const auto& path : change.after) {
      std::string text;
      for (nb::Asn hop : path) text += std::to_string(hop) + " ";
      std::printf("  after:  %s\n", text.c_str());
    }
  }
  return 0;
}

int cmd_explain(const nb::Cli& cli) {
  auto model = load_model(cli.get_string("model", ""));
  if (!model) return 1;
  const auto origin = static_cast<nb::Asn>(cli.get_u64("origin", 0));
  const auto observer = static_cast<nb::Asn>(cli.get_u64("as", 0));
  if (!model->has_as(origin) || !model->has_as(observer)) {
    std::fprintf(stderr, "rdtool: --origin and --as must name ASes in the "
                         "model\n");
    return 1;
  }
  bgp::Engine engine(*model);
  auto sim = engine.run(nb::Prefix::for_asn(origin), origin);
  for (topo::Model::Dense r : model->routers_of(observer))
    std::printf("%s", bgp::explain_selection(*model, sim, r).str(*model).c_str());
  return 0;
}

int cmd_lint(const nb::Cli& cli) {
  if (cli.get_bool("list-fixtures")) {
    for (std::string_view name : analysis::fixture_names())
      std::printf("%.*s -> %s\n", static_cast<int>(name.size()), name.data(),
                  analysis::fixture_expected_code(name));
    return 0;
  }

  std::optional<topo::Model> model;
  std::string what;
  analysis::ValidateOptions options;
  if (cli.has("fixture")) {
    const std::string name = cli.get_string("fixture", "");
    model = analysis::corrupted_fixture(name);
    if (!model) {
      std::fprintf(stderr, "rdtool: unknown fixture %s (see --list-fixtures)\n",
                   name.c_str());
      return 2;
    }
    what = "fixture " + name;
  } else if (cli.has("model")) {
    const std::string path = cli.get_string("model", "");
    model = load_model(path);
    if (!model) return 2;
    options.pairwise_sessions = cli.get_bool("fitted");
    options.agnostic = cli.get_bool("fitted");
    what = path;
  } else if (cli.get_bool("generated")) {
    core::PipelineConfig config = core::PipelineConfig::with(
        cli.get_double("scale", 0.2), cli.get_u64("seed", 1));
    core::Pipeline pipeline = core::make_pipeline(config);
    core::run_data_stages(pipeline);
    model = topo::Model::one_router_per_as(pipeline.graph);
    options.pairwise_sessions = true;  // trivially one router per AS
    options.agnostic = true;
    what = "one-router-per-AS model of generated topology (" +
           std::to_string(pipeline.graph.num_nodes()) + " ASes)";
  } else {
    return usage();
  }

  const analysis::Diagnostics diagnostics =
      analysis::validate_model(*model, options);
  if (cli.get_bool("json")) {
    std::printf("%s",
                analysis::diagnostics_to_json("lint", what, diagnostics).c_str());
  } else {
    std::printf("%s", analysis::render_diagnostics(diagnostics).c_str());
    std::printf("lint: %zu error(s), %zu warning(s) in %s\n",
                analysis::count(diagnostics, analysis::Severity::kError),
                analysis::count(diagnostics, analysis::Severity::kWarning),
                what.c_str());
  }
  return diagnostics.empty() ? 0 : 1;
}

int cmd_audit(const nb::Cli& cli) {
  if (cli.get_bool("list-fixtures")) {
    for (std::string_view name : analysis::audit_fixture_names())
      std::printf("%.*s -> %s\n", static_cast<int>(name.size()), name.data(),
                  analysis::audit_fixture_expected_code(name));
    return 0;
  }

  std::optional<topo::Model> model;
  analysis::AuditOptions options;
  std::string what;
  if (cli.has("fixture")) {
    const std::string name = cli.get_string("fixture", "");
    model = analysis::audit_fixture(name);
    if (!model) {
      std::fprintf(stderr, "rdtool: unknown fixture %s (see --list-fixtures)\n",
                   name.c_str());
      return 2;
    }
    what = "fixture " + name;
  } else if (cli.has("model")) {
    const std::string path = cli.get_string("model", "");
    model = load_model(path);
    if (!model) return 2;
    what = path;
  } else if (cli.get_bool("generated")) {
    core::PipelineConfig config = core::PipelineConfig::with(
        cli.get_double("scale", 0.2), cli.get_u64("seed", 1));
    core::Pipeline pipeline = core::make_pipeline(config);
    core::run_data_stages(pipeline);
    model = std::move(pipeline.ground_truth.model);
    options.engine = pipeline.ground_truth.config.engine_options();
    what = "ground-truth model of generated topology (" +
           std::to_string(model->num_ases()) + " ASes)";
  } else {
    return usage();
  }
  if (cli.has("origin"))
    options.origins.push_back(static_cast<nb::Asn>(cli.get_u64("origin", 0)));
  options.check_blackholes = cli.get_bool("blackholes");
  // 0 = hardware concurrency; per-prefix passes fan out, results are
  // thread-count invariant (see policy_audit.hpp).
  options.threads = static_cast<unsigned>(cli.get_u64("threads", 1));

  ObsSession obs_session;
  if (!obs_session.init(cli, "rdtool audit")) return 2;
  obs::Registry* reg = obs_session.reg();

  obs::CounterId total_ns;
  if (reg != nullptr) total_ns = reg->counter("audit.phase.total_ns");
  obs::PhaseTimer timer(reg, total_ns, obs_session.sink(), "audit");
  const analysis::AuditResult result = analysis::audit_model(*model, options);
  timer.stop();
  const double audit_seconds = timer.seconds();
  if (reg != nullptr) {
    reg->add(reg->counter("audit.prefixes"), result.prefixes.size());
    reg->add(reg->counter("audit.errors"),
             analysis::count(result.diagnostics, analysis::Severity::kError));
    reg->add(reg->counter("audit.warnings"),
             analysis::count(result.diagnostics,
                             analysis::Severity::kWarning));
  }
  if (!obs_session.flush()) return 2;
  if (cli.get_bool("json")) {
    // Render the extra members as an object, then splice them (braces
    // stripped) after the diagnostics array.
    nb::JsonWriter extra;
    extra.begin_object();
    extra.key("seconds").value_fixed(audit_seconds, 6);
    extra.key("threads").value(bgp::ThreadPool::resolve(options.threads));
    extra.key("prefixes")
        .value(static_cast<std::uint64_t>(result.prefixes.size()));
    extra.end_object();
    const std::string& rendered = extra.str();
    std::printf("%s",
                analysis::diagnostics_to_json(
                    "audit", what, result.diagnostics,
                    std::string_view(rendered).substr(1, rendered.size() - 2))
                    .c_str());
  } else {
    std::printf("%s", core::render_audit(result).c_str());
    std::printf("%s", analysis::render_diagnostics(result.diagnostics).c_str());
    std::printf("audit: %zu error(s), %zu warning(s) in %s\n",
                analysis::count(result.diagnostics, analysis::Severity::kError),
                analysis::count(result.diagnostics,
                                analysis::Severity::kWarning),
                what.c_str());
  }
  return result.diagnostics.empty() ? 0 : 1;
}

/// Parses "ASN.IDX" (or bare "ASN", index 0) into a RouterId; nullopt on
/// malformed text.
std::optional<nb::RouterId> parse_router(const std::string& text) {
  if (text.empty()) return std::nullopt;
  std::uint64_t asn = 0;
  std::uint64_t index = 0;
  const std::size_t dot = text.find('.');
  const auto number = [](const std::string& s, std::uint64_t* out) {
    if (s.empty()) return false;
    for (const char c : s) {
      if (c < '0' || c > '9') return false;
      *out = *out * 10 + static_cast<std::uint64_t>(c - '0');
      if (*out > 0xffffffffull) return false;
    }
    return true;
  };
  if (dot == std::string::npos) {
    if (!number(text, &asn)) return std::nullopt;
  } else {
    if (!number(text.substr(0, dot), &asn) ||
        !number(text.substr(dot + 1), &index)) {
      return std::nullopt;
    }
  }
  if (asn > 0xffffu || index > 0xffffu) return std::nullopt;
  return nb::RouterId(static_cast<nb::Asn>(asn),
                      static_cast<std::uint16_t>(index));
}

/// Parses "A.I:B.J" into two RouterIds.
bool parse_session(const std::string& text, nb::RouterId* a, nb::RouterId* b) {
  const std::size_t colon = text.find(':');
  if (colon == std::string::npos) return false;
  const auto left = parse_router(text.substr(0, colon));
  const auto right = parse_router(text.substr(colon + 1));
  if (!left || !right) return false;
  *a = *left;
  *b = *right;
  return true;
}

/// Relationship policies / IGP costs switch on when the model carries them
/// (ground-truth models serialize their classes and costs; fitted models
/// have neither), so a diff interprets each side the way its simulations
/// would run.
bgp::EngineOptions detect_engine_options(const topo::Model& model) {
  bgp::EngineOptions options;
  options.use_relationship_policies = !model.neighbor_classes().empty();
  options.use_igp_cost = !model.igp_costs().empty();
  return options;
}

int cmd_diff(const nb::Cli& cli) {
  if (cli.positional().size() != 2) {
    std::fprintf(stderr,
                 "rdtool: diff needs two models (rdtool diff A.model "
                 "B.model)\n");
    return 2;
  }
  auto model_a = load_model(cli.positional()[0]);
  if (!model_a) return 2;
  auto model_b = load_model(cli.positional()[1]);
  if (!model_b) return 2;

  analysis::DiffOptions options;
  options.engine_a = cli.get_bool("a-raw") ? bgp::EngineOptions{}
                                           : detect_engine_options(*model_a);
  options.engine_b = cli.get_bool("b-raw") ? bgp::EngineOptions{}
                                           : detect_engine_options(*model_b);
  if (cli.has("origin"))
    options.origins.push_back(static_cast<nb::Asn>(cli.get_u64("origin", 0)));
  options.threads = static_cast<unsigned>(cli.get_u64("threads", 1));

  const auto start = std::chrono::steady_clock::now();
  const analysis::DiffResult result =
      analysis::diff_models(*model_a, *model_b, options);
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  const std::string subject =
      cli.positional()[0] + " vs " + cli.positional()[1];
  if (cli.get_bool("json")) {
    nb::JsonWriter extra;
    extra.begin_object();
    extra.key("seconds").value_fixed(seconds, 6);
    extra.key("identical").value(result.identical());
    extra.key("prefixes_compared")
        .value(static_cast<std::uint64_t>(result.prefixes_compared));
    extra.key("prefixes_skipped")
        .value(static_cast<std::uint64_t>(result.prefixes_skipped));
    extra.key("routers_differing")
        .value(static_cast<std::uint64_t>(result.routers_differing));
    extra.key("structure_findings")
        .value(static_cast<std::uint64_t>(result.structure_findings));
    extra.key("truncated").value(result.truncated);
    extra.end_object();
    const std::string& rendered = extra.str();
    std::printf("%s",
                analysis::diagnostics_to_json(
                    "diff", subject, result.diagnostics,
                    std::string_view(rendered).substr(1, rendered.size() - 2))
                    .c_str());
  } else {
    std::printf("%s", analysis::render_diagnostics(result.diagnostics).c_str());
    if (result.identical()) {
      std::printf("diff: no differences across %zu prefix(es)%s\n",
                  result.prefixes_compared,
                  result.truncated
                      ? " (enumeration capped: equivalence holds for the "
                        "enumerated route space only)"
                      : " (models are route-equivalent)");
    } else {
      std::printf("diff: %zu router(s) differ across %zu prefix(es), "
                  "%zu structural finding(s)\n",
                  result.routers_differing, result.prefixes_compared,
                  result.structure_findings);
    }
  }
  return result.identical() ? 0 : 1;
}

int cmd_impact(const nb::Cli& cli) {
  auto model = load_model(cli.get_string("model", ""));
  if (!model) return 2;

  analysis::ModelEdit edit;
  const std::string kind = cli.get_string("edit", "");
  const std::string session = cli.get_string("session", "");
  if (kind == "session-down") {
    edit.kind = analysis::ModelEdit::Kind::kSessionDown;
    if (!parse_session(session, &edit.a, &edit.b)) {
      std::fprintf(stderr, "rdtool: session-down needs --session A.I:B.J\n");
      return 2;
    }
  } else if (kind == "policy-change") {
    edit.kind = analysis::ModelEdit::Kind::kPolicyChange;
    const auto router = parse_router(cli.get_string("router", ""));
    if (!router || !cli.has("origin")) {
      std::fprintf(stderr,
                   "rdtool: policy-change needs --router A.I and --origin N "
                   "[--prefer ASN]\n");
      return 2;
    }
    edit.router = *router;
    edit.prefix =
        nb::Prefix::for_asn(static_cast<nb::Asn>(cli.get_u64("origin", 0)));
    edit.preferred = cli.has("prefer")
                         ? static_cast<nb::Asn>(cli.get_u64("prefer", 0))
                         : nb::kInvalidAsn;
  } else if (kind == "filter-edit") {
    edit.kind = analysis::ModelEdit::Kind::kFilterEdit;
    if (!parse_session(session, &edit.a, &edit.b) || !cli.has("origin")) {
      std::fprintf(stderr,
                   "rdtool: filter-edit needs --session A.I:B.J and "
                   "--origin N [--deny-below L]\n");
      return 2;
    }
    edit.prefix =
        nb::Prefix::for_asn(static_cast<nb::Asn>(cli.get_u64("origin", 0)));
    edit.deny_below_len =
        static_cast<std::uint32_t>(cli.get_u64("deny-below", 0));
  } else {
    std::fprintf(stderr,
                 "rdtool: --edit must be session-down, policy-change or "
                 "filter-edit\n");
    return 2;
  }

  analysis::ImpactOptions options;
  options.engine = detect_engine_options(*model);
  if (cli.has("origin"))
    options.origins.push_back(static_cast<nb::Asn>(cli.get_u64("origin", 0)));

  const auto start = std::chrono::steady_clock::now();
  const analysis::ImpactResult result =
      analysis::compute_impact(*model, edit, options);
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  if (cli.get_bool("json")) {
    nb::JsonWriter json;
    json.begin_object();
    json.key("tool").value("impact");
    json.key("edit").value(edit.str());
    json.key("seconds").value_fixed(seconds, 6);
    json.key("routers_total")
        .value(static_cast<std::uint64_t>(result.routers_total));
    json.key("truncated").value(result.truncated);
    json.key("prefixes").begin_array();
    for (const analysis::PrefixImpact& impact : result.prefixes) {
      json.begin_object();
      json.key("prefix").value(impact.prefix.str());
      json.key("origin").value(static_cast<std::uint64_t>(impact.origin));
      json.key("truncated").value(impact.truncated);
      json.key("routers").begin_array();
      for (const nb::RouterId id : impact.routers) json.value(id.str());
      json.end_array();
      json.end_object();
    }
    json.end_array();
    json.end_object();
    std::printf("%s\n", json.str().c_str());
  } else {
    std::printf("impact of %s:\n", edit.str().c_str());
    for (const analysis::PrefixImpact& impact : result.prefixes) {
      std::printf("  prefix %s (origin AS %u): %zu router(s)%s\n",
                  impact.prefix.str().c_str(), impact.origin,
                  impact.routers.size(),
                  impact.truncated
                      ? " [enumeration capped: relaxed-reachability bound]"
                      : "");
      std::string line;
      for (const nb::RouterId id : impact.routers) {
        if (!line.empty()) line += " ";
        line += id.str();
      }
      if (!line.empty()) std::printf("    %s\n", line.c_str());
    }
    std::printf("impact: %zu router(s) across %zu prefix(es)\n",
                result.routers_total, result.prefixes.size());
  }
  return 0;
}

/// `rdtool plan`: static working-set and shard-plan analyzer
/// (analysis/workset.hpp + analysis/partition.hpp).  Deliberately emits no
/// timings in --json mode: the CI determinism gate asserts byte-identical
/// output for identical inputs.
int cmd_plan(const nb::Cli& cli) {
  std::optional<topo::Model> model;
  bgp::EngineOptions engine_options;
  std::string what;
  if (cli.has("model")) {
    const std::string path = cli.get_string("model", "");
    model = load_model(path);
    if (!model) return 2;
    engine_options = detect_engine_options(*model);
    what = path;
  } else if (cli.get_bool("generated")) {
    core::PipelineConfig config = core::PipelineConfig::with(
        cli.get_double("scale", 0.2), cli.get_u64("seed", 1));
    core::Pipeline pipeline = core::make_pipeline(config);
    core::run_data_stages(pipeline);
    model = std::move(pipeline.ground_truth.model);
    engine_options = pipeline.ground_truth.config.engine_options();
    what = "ground-truth model of generated topology (" +
           std::to_string(model->num_ases()) + " ASes)";
  } else {
    return usage();
  }

  analysis::PlanOptions plan_options;
  plan_options.shards = cli.get_u64("shards", 4);
  if (plan_options.shards == 0) {
    std::fprintf(stderr, "rdtool: --shards must be at least 1\n");
    return 2;
  }
  analysis::WorksetOptions workset_options;
  workset_options.exact = !cli.get_bool("no-exact");

  bgp::Engine engine(*model, engine_options);
  analysis::Diagnostics diagnostics;
  const std::vector<analysis::PrefixWorkset> worksets =
      analysis::compute_all_worksets(engine, workset_options, &g_reach_cache,
                                     &diagnostics);
  const analysis::ShardPlan plan = analysis::plan_shards(
      worksets, model->num_routers(), plan_options, &diagnostics);

  if (cli.get_bool("json")) {
    std::printf("%s\n", analysis::plan_to_json(plan, worksets).c_str());
  } else {
    std::printf("shard plan for %s:\n", what.c_str());
    for (std::size_t s = 0; s < plan.shards.size(); ++s) {
      const analysis::ShardPlan::Shard& shard = plan.shards[s];
      std::printf("  shard %zu: %zu prefix(es), cost %llu, %zu router(s)\n",
                  s, shard.prefixes.size(),
                  static_cast<unsigned long long>(shard.cost), shard.routers);
    }
    std::printf("plan: %zu prefix(es) over %zu shard(s), total cost %llu, "
                "cut weight %llu, imbalance %.3f, %zu relaxed prefix(es)\n",
                worksets.size(), plan.num_shards,
                static_cast<unsigned long long>(plan.total_cost),
                static_cast<unsigned long long>(plan.cut_weight),
                plan.imbalance, plan.relaxed_prefixes);
    std::printf("%s", analysis::render_diagnostics(diagnostics).c_str());
  }
  return 0;
}

/// `rdtool stats TRACE`: reads a trace written by `refine --trace` (Chrome
/// trace_event or JSONL) and summarizes it -- per-iteration convergence
/// table (the trace-side twin of render_refine_log, from the "iteration"
/// span args) plus a phase-time breakdown and per-prefix span totals.
/// Loads a refinement trace -- the Chrome trace_event envelope or the
/// JSONL form -- into a flat event list.  Shared by `rdtool stats` and
/// `rdtool profile`.  False after printing the error (exit-2 semantics).
bool load_trace_events(const std::string& path,
                       std::vector<nb::JsonValue>* events) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "rdtool: cannot open trace %s\n", path.c_str());
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();

  std::string error;
  if (auto doc = nb::json_parse(text, &error); doc.has_value()) {
    // One document: the Chrome envelope (or a single bare event).
    if (const nb::JsonValue* list = doc->find("traceEvents");
        list != nullptr && list->is_array()) {
      *events = list->array;
    } else if (doc->find("ph") != nullptr) {
      events->push_back(std::move(*doc));
    } else {
      std::fprintf(stderr, "rdtool: %s: no traceEvents array\n", path.c_str());
      return false;
    }
    return true;
  }
  // JSONL: one event object per line.
  std::istringstream lines(text);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(lines, line)) {
    ++line_no;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    auto event = nb::json_parse(line, &error);
    if (!event) {
      std::fprintf(stderr, "rdtool: %s:%zu: %s\n", path.c_str(), line_no,
                   error.c_str());
      return false;
    }
    events->push_back(std::move(*event));
  }
  return true;
}

int cmd_stats(const nb::Cli& cli) {
  std::string path = cli.get_string("trace", "");
  if (path.empty() && !cli.positional().empty()) path = cli.positional().front();
  if (path.empty()) {
    std::fprintf(stderr, "rdtool: stats needs a trace file "
                         "(rdtool stats TRACE)\n");
    return 2;
  }
  std::vector<nb::JsonValue> events;
  if (!load_trace_events(path, &events)) return 2;

  struct PhaseAgg {
    std::uint64_t count = 0;
    std::uint64_t us = 0;
  };
  std::vector<std::pair<std::string, PhaseAgg>> phases;  // first-seen order
  const auto phase_slot = [&phases](std::string_view name) -> PhaseAgg& {
    for (auto& [known, agg] : phases)
      if (known == name) return agg;
    phases.emplace_back(std::string(name), PhaseAgg{});
    return phases.back().second;
  };

  nb::TextTable table({"iter", "active", "matched", "routers", "+routers",
                       "filters", "rankings", "~policies", "messages"});
  std::size_t iterations = 0;
  std::uint64_t prefix_spans = 0;
  std::uint64_t prefix_messages = 0;
  for (const nb::JsonValue& event : events) {
    if (event.string_or("ph") != "X") continue;
    const std::string_view cat = event.string_or("cat");
    const std::string_view name = event.string_or("name");
    const nb::JsonValue* args = event.find("args");
    if (cat == "prefix") {
      ++prefix_spans;
      if (args != nullptr)
        prefix_messages +=
            static_cast<std::uint64_t>(args->number_or("messages"));
      continue;
    }
    if (cat == "phase") {
      PhaseAgg& agg = phase_slot(name);
      ++agg.count;
      agg.us += static_cast<std::uint64_t>(event.number_or("dur"));
      continue;
    }
    if (name != "iteration" || args == nullptr) continue;
    ++iterations;
    const auto u64 = [args](std::string_view key) {
      return static_cast<std::uint64_t>(args->number_or(key));
    };
    table.add_row({std::to_string(u64("iteration")),
                   std::to_string(u64("active_prefixes")),
                   std::to_string(u64("matched")) + "/" +
                       std::to_string(u64("paths_total")),
                   std::to_string(u64("routers")),
                   "+" + std::to_string(u64("routers_added")),
                   std::to_string(u64("filters")),
                   std::to_string(u64("rankings")),
                   "~" + std::to_string(u64("policies_changed")),
                   std::to_string(u64("messages"))});
  }

  std::printf("trace: %s (%zu events)\n", path.c_str(), events.size());
  if (iterations == 0) {
    std::printf("no refinement iteration spans (trace level below "
                "'iteration', or not a refine trace)\n");
  } else {
    std::printf("\n%s", table.render().c_str());
  }
  if (!phases.empty()) {
    nb::TextTable phase_table({"phase", "spans", "seconds"});
    for (const auto& [name, agg] : phases) {
      char seconds[32];
      std::snprintf(seconds, sizeof seconds, "%.3f",
                    static_cast<double>(agg.us) / 1e6);
      phase_table.add_row({name, std::to_string(agg.count), seconds});
    }
    std::printf("\n%s", phase_table.render().c_str());
  }
  if (prefix_spans > 0) {
    std::printf("\nper-prefix sims: %llu spans, %llu messages\n",
                static_cast<unsigned long long>(prefix_spans),
                static_cast<unsigned long long>(prefix_messages));
  }
  return 0;
}

/// `rdtool profile TRACE [--json]`: the post-run sweep profiler (DESIGN.md
/// section 14).  Reads the per-shard spans a `refine --trace` run emits at
/// trace level iteration or above, attributes parallel speedup loss to
/// imbalance vs idle vs serial sections, and scores the static cost model
/// by the rank correlation of predicted vs measured shard cost.
int cmd_profile(const nb::Cli& cli) {
  std::string path = cli.get_string("trace", "");
  if (path.empty() && !cli.positional().empty()) path = cli.positional().front();
  if (path.empty()) {
    std::fprintf(stderr, "rdtool: profile needs a trace file "
                         "(rdtool profile TRACE)\n");
    return 2;
  }
  std::vector<nb::JsonValue> events;
  if (!load_trace_events(path, &events)) return 2;

  std::vector<obs::SweepShardSample> samples;
  std::vector<obs::SweepIterationSpan> all_sweeps;
  double total_seconds = 0;
  for (const nb::JsonValue& event : events) {
    if (event.string_or("ph") != "X") continue;
    const std::string_view cat = event.string_or("cat");
    const std::string_view name = event.string_or("name");
    const nb::JsonValue* args = event.find("args");
    if (cat == "sweep" && name == "shard" && args != nullptr) {
      obs::SweepShardSample s;
      s.iteration = static_cast<std::size_t>(args->number_or("iteration"));
      s.shard = static_cast<std::size_t>(args->number_or("shard"));
      const auto tid = static_cast<std::uint64_t>(event.number_or("tid"));
      s.worker = tid >= 1000 ? static_cast<unsigned>(tid - 1000) : 0;
      s.predicted_cost =
          static_cast<std::uint64_t>(args->number_or("predicted_cost"));
      s.start_us = static_cast<std::uint64_t>(event.number_or("ts"));
      s.dur_us = static_cast<std::uint64_t>(event.number_or("dur"));
      s.messages = static_cast<std::uint64_t>(args->number_or("messages"));
      s.prefixes = static_cast<std::size_t>(args->number_or("prefixes"));
      s.arena_bytes =
          static_cast<std::uint64_t>(args->number_or("arena_bytes"));
      samples.push_back(s);
    } else if (cat == "phase" && name == "simulate") {
      obs::SweepIterationSpan span;
      span.iteration =
          args != nullptr
              ? static_cast<std::size_t>(args->number_or("iteration"))
              : 0;
      span.start_us = static_cast<std::uint64_t>(event.number_or("ts"));
      span.dur_us = static_cast<std::uint64_t>(event.number_or("dur"));
      all_sweeps.push_back(span);
    } else if (cat == "phase" && name == "refine") {
      total_seconds = event.number_or("dur") / 1e6;
    }
  }
  if (samples.empty()) {
    std::fprintf(stderr,
                 "rdtool: %s has no sweep shard spans; profile needs a trace "
                 "from `refine --trace F` at --trace-level iteration or "
                 "above, with the shard-executed sweep on (the default)\n",
                 path.c_str());
    return 1;
  }
  // Attribute only the sweeps that ran shard-executed (matching what an
  // in-process RefineResult would carry); sweeps without shard samples --
  // single-active-prefix tail iterations -- stay in the serial share.
  std::vector<obs::SweepIterationSpan> sweeps;
  for (const obs::SweepIterationSpan& span : all_sweeps) {
    for (const obs::SweepShardSample& s : samples) {
      if (s.iteration == span.iteration) {
        sweeps.push_back(span);
        break;
      }
    }
  }
  const obs::SweepProfile profile =
      obs::profile_sweep(samples, sweeps, total_seconds);
  const bool have_corr = profile.cost_rank_correlation ==
                         profile.cost_rank_correlation;  // not NaN

  if (cli.get_bool("json")) {
    nb::JsonWriter w;
    w.begin_object();
    w.key("tool").value("profile");
    w.key("version").value(1);
    w.key("trace").value(path);
    w.key("workers").value(profile.workers);
    w.key("iterations").value(static_cast<std::uint64_t>(profile.iterations));
    w.key("shard_samples")
        .value(static_cast<std::uint64_t>(profile.shard_samples));
    w.key("total_seconds").value_fixed(profile.total_seconds, 6);
    w.key("parallel_seconds").value_fixed(profile.parallel_seconds, 6);
    w.key("serial_seconds").value_fixed(profile.serial_seconds, 6);
    w.key("busy_seconds").value_fixed(profile.busy_seconds, 6);
    w.key("idle_seconds").value_fixed(profile.idle_seconds, 6);
    w.key("imbalance_seconds").value_fixed(profile.imbalance_seconds, 6);
    w.key("overhead_seconds").value_fixed(profile.overhead_seconds, 6);
    w.key("measured_speedup").value_fixed(profile.measured_speedup, 4);
    w.key("cost_rank_correlation");
    if (have_corr)
      w.value_fixed(profile.cost_rank_correlation, 4);
    else
      w.raw("null");
    w.key("lanes").begin_array();
    for (const obs::WorkerLane& lane : profile.lanes) {
      w.begin_object();
      w.key("worker").value(lane.worker);
      w.key("shards").value(lane.shards);
      w.key("busy_seconds")
          .value_fixed(static_cast<double>(lane.busy_us) / 1e6, 6);
      w.key("idle_seconds")
          .value_fixed(static_cast<double>(lane.idle_us) / 1e6, 6);
      w.end_object();
    }
    w.end_array();
    w.end_object();
    std::printf("%s\n", w.str().c_str());
    return 0;
  }

  std::printf("profile: %s\n", path.c_str());
  std::printf("%u worker(s), %zu sharded sweep(s), %zu shard sample(s)\n",
              profile.workers, profile.iterations, profile.shard_samples);
  std::printf("wall clock %.3fs = parallel %.3fs + serial %.3fs\n",
              profile.total_seconds, profile.parallel_seconds,
              profile.serial_seconds);
  std::printf(
      "speedup loss: imbalance %.3fs, sweep overhead (planning/"
      "scheduling) %.3fs, worker idle %.3fs\n",
      profile.imbalance_seconds, profile.overhead_seconds,
      profile.idle_seconds);
  std::printf("measured speedup %.2fx over the same work serialized\n",
              profile.measured_speedup);
  if (have_corr)
    std::printf("cost model: predicted-vs-measured shard rank correlation "
                "%.4f over %zu shards\n",
                profile.cost_rank_correlation, profile.shard_samples);
  else
    std::printf("cost model: rank correlation n/a (fewer than 2 shard "
                "samples, or constant costs)\n");
  nb::TextTable lanes({"worker", "shards", "busy s", "idle s", "busy %"});
  for (const obs::WorkerLane& lane : profile.lanes) {
    const double busy = static_cast<double>(lane.busy_us) / 1e6;
    const double idle = static_cast<double>(lane.idle_us) / 1e6;
    char busy_s[32], idle_s[32], util[32];
    std::snprintf(busy_s, sizeof busy_s, "%.3f", busy);
    std::snprintf(idle_s, sizeof idle_s, "%.3f", idle);
    std::snprintf(util, sizeof util, "%.1f",
                  busy + idle > 0 ? 100.0 * busy / (busy + idle) : 0.0);
    lanes.add_row({std::to_string(lane.worker),
                   std::to_string(lane.shards), busy_s, idle_s, util});
  }
  std::printf("\n%s", lanes.render().c_str());
  return 0;
}

/// `rdtool serve`: the long-lived route-prediction daemon (DESIGN.md
/// section 15).  Loads the fitted model once, then answers predict /
/// explain / what-if / health queries over the length-prefixed JSON
/// protocol until SIGINT/SIGTERM, which triggers the cooperative drain:
/// stop accepting, finish the admitted queue within --drain-seconds, flush
/// observability atomically, exit 0.  `--once REQUEST` answers a single
/// request on stdout through the exact worker code path (no sockets) --
/// the byte-identity oracle the tests and quick-start examples use.
int cmd_serve(const nb::Cli& cli) {
  if (!cli.has("model")) return usage();
  auto model = load_model(cli.get_string("model", ""));
  if (!model) return 1;

  serve::ServeConfig config;
  config.threads = static_cast<unsigned>(cli.get_u64("threads", 0));
  config.queue_capacity =
      static_cast<std::size_t>(cli.get_u64("queue-capacity", 0));
  config.deadline_seconds = cli.get_double("deadline-seconds", 2.0);
  config.drain_seconds = cli.get_double("drain-seconds", 5.0);
  config.whatif_max_origins =
      static_cast<std::size_t>(cli.get_u64("whatif-origins", 8));
  config.engine = detect_engine_options(*model);
#ifdef RD_FAULT_INJECTION
  // Request-addressed fault points (throw/stall/bad-alloc/diverge) stay
  // inert unless the operator opts in: a daemon exposed to real clients
  // must not let them stall its workers.
  config.fault.honor_request_faults = cli.get_bool("allow-request-faults");
  config.fault.stall_ms = cli.get_u64("stall-ms", 200);
#endif

  ObsSession obs_session;
  if (!obs_session.init(cli, "rdtool serve")) return 2;
  config.trace = obs_session.sink();

  if (cli.has("once")) {
    // One request, no sockets, no threads: parse -> execute -> render on
    // stdout.  Exit 0 unless the answer itself is an error.
    serve::Server server(*model, config);
    const std::string response = server.answer(cli.get_string("once", ""));
    std::printf("%s\n", response.c_str());
    if (!obs_session.flush()) return 1;
    const auto doc = nb::json_parse(response, nullptr);
    return doc && doc->string_or("status") != "error" ? 0 : 1;
  }

  std::optional<obs::FlightRecorder> flight;
  std::string flight_dump_path;
  if (!cli.get_bool("no-flight-recorder")) {
    flight.emplace(
        serve::Server::flight_tracks(nb::resolve_threads(config.threads)),
        cli.get_u64("flight-capacity", obs::FlightRecorder::kDefaultCapacity));
    flight->set_label(0, "accept");
    flight->set_label(1, "admission");
    config.flight = &*flight;
    flight_dump_path = cli.get_string(
        "flight-dump", cli.get_string("model", "") + ".serve.flight.json");
  }

  serve::Server server(*model, config);
  std::string error;
  const auto port = static_cast<std::uint16_t>(cli.get_u64("port", 0));
  if (!server.listen(port, &error)) {
    std::fprintf(stderr, "rdtool: %s\n", error.c_str());
    return 1;
  }
  // CI and scripts pass --port 0 (ephemeral) plus --port-file to learn the
  // kernel's pick without a race.
  if (cli.has("port-file") &&
      !write_file(cli.get_string("port-file", ""),
                  std::to_string(server.port()) + "\n")) {
    return 1;
  }
  std::fprintf(stderr,
               "rdtool: serving %s on 127.0.0.1:%u (%u workers, queue %zu, "
               "deadline %.3fs)\n",
               cli.get_string("model", "").c_str(), server.port(),
               server.workers(), server.queue_capacity(),
               config.deadline_seconds);

  g_interrupt.store(false);
  auto prev_int = std::signal(SIGINT, handle_interrupt);
  auto prev_term = std::signal(SIGTERM, handle_interrupt);
#ifdef SIGPIPE
  // A client hanging up mid-response must surface as a write error on that
  // connection, never kill the daemon.
  std::signal(SIGPIPE, SIG_IGN);
#endif
  while (!g_interrupt.load(std::memory_order_relaxed))
    std::this_thread::sleep_for(std::chrono::milliseconds(50));

  // Cooperative drain (the acceptance contract: SIGTERM always reaches
  // exit 0 with complete artifacts).  shutdown() returns only after every
  // worker and connection thread joined, so the sinks are quiescent for
  // the atomic flush below.
  std::fprintf(stderr, "rdtool: draining (budget %.3fs)\n",
               config.drain_seconds);
  server.request_stop();
  server.shutdown();
  std::signal(SIGINT, prev_int);
  std::signal(SIGTERM, prev_term);

  server.export_metrics(obs_session.reg());
  const bool flushed = obs_session.flush(
      flight.has_value() ? &*flight : nullptr, flight_dump_path);

  const serve::ServeStatus status = server.status();
  std::fprintf(stderr,
               "rdtool: served %llu requests (%llu ok, %llu degraded, "
               "%llu errors, %llu shed) over %llu connections in %.3fs\n",
               static_cast<unsigned long long>(status.requests),
               static_cast<unsigned long long>(status.ok),
               static_cast<unsigned long long>(status.degraded),
               static_cast<unsigned long long>(status.errors),
               static_cast<unsigned long long>(status.shed),
               static_cast<unsigned long long>(status.connections),
               status.uptime_seconds);
  return flushed ? 0 : 1;
}

int cmd_selftest(const nb::Cli& cli) {
  const std::string dir = cli.get_string("dir", "/tmp");
  const std::string dump = dir + "/rdtool_selftest.dump";
  const std::string model_path = dir + "/rdtool_selftest.model";
  const auto slurp = [](const std::string& p) {
    std::ifstream f(p);
    std::ostringstream s;
    s << f.rdbuf();
    return s.str();
  };

  // generate
  {
    const char* argv[] = {"rdtool", "--out",   dump.c_str(), "--scale",
                          "0.12",   "--seed",  "5"};
    nb::Cli sub(7, const_cast<char**>(argv));
    if (cmd_generate(sub) != 0) return 1;
  }
  // refine
  {
    const char* argv[] = {"rdtool", "--dataset", dump.c_str(), "--out",
                          model_path.c_str()};
    nb::Cli sub(5, const_cast<char**>(argv));
    if (cmd_refine(sub) != 0) return 1;
  }
  // refine again with full observability attached: the fitted model must
  // be byte-identical to the unobserved one, and the trace must summarize.
  {
    const std::string traced_model = dir + "/rdtool_selftest_traced.model";
    const std::string trace_path = dir + "/rdtool_selftest.trace";
    const std::string metrics_path = dir + "/rdtool_selftest.metrics.json";
    {
      const char* argv[] = {"rdtool", "--dataset", dump.c_str(),
                            "--out", traced_model.c_str(),
                            "--trace", trace_path.c_str(),
                            "--trace-level", "prefix",
                            "--metrics", metrics_path.c_str()};
      nb::Cli sub(11, const_cast<char**>(argv));
      if (cmd_refine(sub) != 0) return 1;
    }
    if (slurp(model_path) != slurp(traced_model)) {
      std::fprintf(stderr, "selftest: traced refine produced a different "
                           "model\n");
      return 1;
    }
    {
      const char* argv[] = {"rdtool", trace_path.c_str()};
      nb::Cli sub(2, const_cast<char**>(argv));
      if (cmd_stats(sub) != 0) return 1;
    }
    // The same trace must profile: the default sweep is shard-executed, so
    // per-shard spans are present at trace level iteration and above.
    {
      const char* argv[] = {"rdtool", trace_path.c_str(), "--json"};
      nb::Cli sub(3, const_cast<char**>(argv));
      if (cmd_profile(sub) != 0) {
        std::fprintf(stderr, "selftest: profile failed on the refine "
                             "trace\n");
        return 1;
      }
    }
  }
  // Forced degraded fit (--prefix-budget 1 freezes every prefix as R702,
  // exit 3): the default-on flight recorder must leave a post-mortem dump
  // next to the model.
  {
    const std::string degraded_model = dir + "/rdtool_selftest_degraded.model";
    const std::string flight_path = degraded_model + ".flight.json";
    std::remove(flight_path.c_str());
    {
      const char* argv[] = {"rdtool", "--dataset", dump.c_str(),
                            "--out", degraded_model.c_str(),
                            "--prefix-budget", "1"};
      nb::Cli sub(7, const_cast<char**>(argv));
      if (cmd_refine(sub) != 3) {
        std::fprintf(stderr, "selftest: budget-starved refine did not exit "
                             "3\n");
        return 1;
      }
    }
    const std::string flight_doc = slurp(flight_path);
    if (flight_doc.find("flight-recorder") == std::string::npos) {
      std::fprintf(stderr, "selftest: degraded refine left no flight dump "
                           "at %s\n", flight_path.c_str());
      return 1;
    }
  }
#ifdef RD_FAULT_INJECTION
  // Fault tolerance: interrupt a fit mid-flight (deterministically, via the
  // injected interrupt), resume from the checkpoint, and require the
  // resumed fit to land on a byte-identical model.
  {
    const std::string ck_path = dir + "/rdtool_selftest.ckpt";
    const std::string resumed_model = dir + "/rdtool_selftest_resumed.model";
    {
      const char* argv[] = {"rdtool", "--dataset", dump.c_str(),
                            "--out", resumed_model.c_str(),
                            "--checkpoint", ck_path.c_str(),
                            "--checkpoint-every", "1",
                            "--interrupt-after", "2"};
      nb::Cli sub(11, const_cast<char**>(argv));
      if (cmd_refine(sub) != 130) {
        std::fprintf(stderr, "selftest: interrupted refine did not exit "
                             "130\n");
        return 1;
      }
    }
    {
      const char* argv[] = {"rdtool", "--dataset", dump.c_str(),
                            "--out", resumed_model.c_str(),
                            "--resume", ck_path.c_str()};
      nb::Cli sub(7, const_cast<char**>(argv));
      if (cmd_refine(sub) != 0) return 1;
    }
    if (slurp(model_path) != slurp(resumed_model)) {
      std::fprintf(stderr, "selftest: resumed refine produced a different "
                           "model\n");
      return 1;
    }
  }
#endif
  // predict on held-out feeds
  {
    const char* argv[] = {"rdtool", "--dataset", dump.c_str(), "--model",
                          model_path.c_str(), "--validation-only"};
    nb::Cli sub(6, const_cast<char**>(argv));
    if (cmd_predict(sub) != 0) return 1;
  }
  // info on both artifacts
  {
    const char* argv[] = {"rdtool", "--dataset", dump.c_str()};
    nb::Cli sub(3, const_cast<char**>(argv));
    if (cmd_info(sub) != 0) return 1;
  }
  {
    const char* argv[] = {"rdtool", "--model", model_path.c_str()};
    nb::Cli sub(3, const_cast<char**>(argv));
    if (cmd_info(sub) != 0) return 1;
  }
  // lint the fitted model, including the refinement-closure checks; once
  // more in JSON to keep the machine-readable path exercised.
  {
    const char* argv[] = {"rdtool", "--model", model_path.c_str(),
                          "--fitted"};
    nb::Cli sub(4, const_cast<char**>(argv));
    if (cmd_lint(sub) != 0) return 1;
  }
  {
    const char* argv[] = {"rdtool", "--model", model_path.c_str(),
                          "--fitted", "--json"};
    nb::Cli sub(5, const_cast<char**>(argv));
    if (cmd_lint(sub) != 0) return 1;
  }
  // static audit of the fitted model.  Advisory findings (dead policies,
  // truncation) exit 1 and are fine here; only usage/IO failures (exit >= 2)
  // fail the selftest.  test_audit separately asserts fitted models carry no
  // S500 dispute wheel.
  {
    const char* argv[] = {"rdtool", "--model", model_path.c_str()};
    nb::Cli sub(3, const_cast<char**>(argv));
    if (cmd_audit(sub) >= 2) return 1;
  }
  // static diff of the fitted model against itself: must be empty (exit 0).
  {
    const char* argv[] = {"rdtool", model_path.c_str(), model_path.c_str()};
    nb::Cli sub(3, const_cast<char**>(argv));
    if (cmd_diff(sub) != 0) {
      std::fprintf(stderr, "selftest: self-diff reported differences\n");
      return 1;
    }
  }
  // static impact of downing the first session of the fitted model; exit 0
  // regardless of the set's size.
  {
    auto model = load_model(model_path);
    if (!model) return 1;
    std::string session;
    for (topo::Model::Dense r = 0;
         r < model->num_routers() && session.empty(); ++r) {
      if (!model->peers(r).empty()) {
        session = model->router_id(r).str() + ":" +
                  model->router_id(model->peers(r).front()).str();
      }
    }
    const char* argv[] = {"rdtool", "--model", model_path.c_str(),
                          "--edit", "session-down",
                          "--session", session.c_str(), "--json"};
    nb::Cli sub(8, const_cast<char**>(argv));
    if (cmd_impact(sub) != 0) return 1;
  }
  // what-if on the fitted model: remove the first link we can find.
  {
    auto model = load_model(model_path);
    if (!model) return 1;
    nb::Asn a = nb::kInvalidAsn, b = nb::kInvalidAsn;
    for (topo::Model::Dense r = 0; r < model->num_routers() && a == nb::kInvalidAsn; ++r) {
      if (!model->peers(r).empty()) {
        a = model->router_id(r).asn();
        b = model->router_id(model->peers(r).front()).asn();
      }
    }
    std::string link = std::to_string(a) + ":" + std::to_string(b);
    const char* argv[] = {"rdtool", "--model", model_path.c_str(),
                          "--remove-link", link.c_str(), "--prefixes", "10"};
    nb::Cli sub(7, const_cast<char**>(argv));
    if (cmd_whatif(sub) != 0) return 1;
  }
  std::printf("selftest OK\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  nb::Cli cli(argc - 1, argv + 1);
  if (command == "generate") return cmd_generate(cli);
  if (command == "info") return cmd_info(cli);
  if (command == "refine") return cmd_refine(cli);
  if (command == "predict") return cmd_predict(cli);
  if (command == "whatif") return cmd_whatif(cli);
  if (command == "explain") return cmd_explain(cli);
  if (command == "lint") return cmd_lint(cli);
  if (command == "audit") return cmd_audit(cli);
  if (command == "diff") return cmd_diff(cli);
  if (command == "impact") return cmd_impact(cli);
  if (command == "plan") return cmd_plan(cli);
  if (command == "stats") return cmd_stats(cli);
  if (command == "profile") return cmd_profile(cli);
  if (command == "serve") return cmd_serve(cli);
  if (command == "selftest") return cmd_selftest(cli);
  if (command == "help" || command == "--help" || command == "-h") {
    print_help(stdout);
    return 0;
  }
  return usage();
}
