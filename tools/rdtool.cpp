// rdtool -- command-line front end for the route-diversity library.
//
// Subcommands (all file formats are the library's text formats, see
// data/rib_io.hpp and topology/model_io.hpp):
//
//   rdtool generate --out feeds.dump [--scale S] [--seed N] [--raw]
//              [--updates N --updates-out stream.upd]
//       Generate a synthetic Internet, observe it and write the (stub-
//       reduced unless --raw) RIB dump; optionally also simulate N
//       single-session failures and write the update stream.
//
//   rdtool info --dataset feeds.dump | --model fitted.model
//       Summarize a dump or a model.
//
//   rdtool refine --dataset feeds.dump --out fitted.model
//              [--training-fraction F] [--split-seed N] [--all]
//              [--updates stream.upd]
//       Split the feeds by observation point, fit the quasi-router model to
//       the training side (--all: to every record) and write it.
//
//   rdtool predict --dataset feeds.dump --model fitted.model
//              [--training-fraction F] [--split-seed N] [--validation-only]
//       Evaluate the model's predictions with the Section 4.2 metrics.
//
//   rdtool whatif --model fitted.model --remove-link A:B [--prefixes N]
//       Predict the routing impact of removing an AS link.
//
//   rdtool explain --model fitted.model --origin O --as A
//       Show every quasi-router's decision at AS A for O's prefix.
//
//   rdtool lint --model fitted.model [--fitted] [--json]
//          | --generated [--scale S] [--seed N]
//          | --fixture NAME | --list-fixtures
//       Run the model linter (analysis::validate_model) and print structured
//       diagnostics.  --fitted adds the refinement-closure and agnosticism
//       checks.  --generated lints the one-quasi-router-per-AS model of a
//       freshly generated topology.  --fixture lints a deliberately
//       corrupted in-process model (ctest asserts these fail).
//
//   rdtool audit --model fitted.model [--origin N] [--json]
//          | --generated [--scale S] [--seed N]
//          | --fixture NAME | --list-fixtures
//       Run the static policy auditor (analysis::audit_model): dispute-wheel
//       safety (S5xx), dead policies (D6xx) and per-prefix route-diversity
//       bounds, all without simulation.  --generated audits the ground-truth
//       model of a freshly generated topology under its relationship
//       policies.  --fixture audits a deliberately unsafe/wasteful in-process
//       model (ctest asserts these fail).
//
//   rdtool selftest [--dir DIR]
//       End-to-end smoke test over real files (used by ctest).
//
// Exit codes for lint and audit, uniform (also shown by `rdtool help`):
//   0  clean (no diagnostics at all)
//   1  diagnostics found (any severity)
//   2  usage or I/O error
// Other subcommands exit 0 on success and non-zero on failure.
#include <cstdio>
#include <cstring>
#include <chrono>
#include <fstream>
#include <optional>
#include <sstream>

#include "analysis/fixtures.hpp"
#include "bgp/threadpool.hpp"
#include "analysis/policy_audit.hpp"
#include "analysis/validate_model.hpp"
#include "bgp/explain.hpp"
#include "core/pipeline.hpp"
#include "core/predict.hpp"
#include "core/report.hpp"
#include "core/whatif.hpp"
#include "data/dataset_stats.hpp"
#include "data/dynamics.hpp"
#include "data/rib_io.hpp"
#include "netbase/cli.hpp"
#include "netbase/strings.hpp"
#include "topology/model_io.hpp"

namespace {

void print_help(std::FILE* out) {
  std::fprintf(
      out,
      "usage: rdtool <generate|info|refine|predict|whatif|explain|"
      "lint|audit|selftest|help> [options]\n"
      "\n"
      "  generate  write a synthetic RIB dump (--out F [--scale S --seed N])\n"
      "  info      summarize --dataset F or --model F\n"
      "  refine    fit a quasi-router model (--dataset F --out F\n"
      "            [--threads N] [--json]); the parallel sweep yields the\n"
      "            same model for every thread count\n"
      "  predict   evaluate a model (--dataset F --model F)\n"
      "  whatif    impact of removing a link (--model F --remove-link A:B)\n"
      "  explain   per-router decisions (--model F --origin O --as A)\n"
      "  lint      structural model linter (--model F [--fitted] | "
      "--generated | --fixture NAME | --list-fixtures) [--json]\n"
      "  audit     static policy auditor: dispute-wheel safety, dead\n"
      "            policies, diversity bounds (--model F [--origin N] | "
      "--generated | --fixture NAME | --list-fixtures)\n"
      "            [--threads N] [--json]\n"
      "  selftest  end-to-end smoke test over real files (--dir D)\n"
      "\n"
      "--threads 0 selects the hardware thread count; refine/audit --json\n"
      "reports include wall-clock phase timings\n"
      "\n"
      "exit codes (lint, audit):\n"
      "  0  clean: no diagnostics at all\n"
      "  1  diagnostics found (any severity)\n"
      "  2  usage or I/O error\n"
      "other subcommands exit 0 on success, non-zero on failure;\n"
      "see the header of tools/rdtool.cpp for details\n");
}

int usage() {
  print_help(stderr);
  return 2;
}

std::optional<data::BgpDataset> load_dataset(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "rdtool: cannot open dataset %s\n", path.c_str());
    return std::nullopt;
  }
  std::string error;
  auto dataset = data::read_dataset(in, &error);
  if (!dataset)
    std::fprintf(stderr, "rdtool: %s: %s\n", path.c_str(), error.c_str());
  return dataset;
}

std::optional<topo::Model> load_model(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "rdtool: cannot open model %s\n", path.c_str());
    return std::nullopt;
  }
  std::string error;
  auto model = topo::read_model(in, &error);
  if (!model)
    std::fprintf(stderr, "rdtool: %s: %s\n", path.c_str(), error.c_str());
  return model;
}

bool write_file(const std::string& path, const std::string& contents) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "rdtool: cannot write %s\n", path.c_str());
    return false;
  }
  out << contents;
  return true;
}

int cmd_generate(const nb::Cli& cli) {
  const std::string out_path = cli.get_string("out", "");
  if (out_path.empty()) return usage();
  core::PipelineConfig config = core::PipelineConfig::with(
      cli.get_double("scale", 0.5), cli.get_u64("seed", 1));
  core::Pipeline pipeline = core::make_pipeline(config);
  core::run_data_stages(pipeline);
  const data::BgpDataset& dataset =
      cli.get_bool("raw") ? pipeline.raw_dataset : pipeline.dataset;
  if (!write_file(out_path, data::dataset_to_string(dataset))) return 1;
  std::printf("wrote %zu records from %zu feeds to %s\n",
              dataset.records.size(), dataset.points.size(),
              out_path.c_str());

  if (cli.has("updates-out")) {
    data::DynamicsConfig dynamics;
    dynamics.num_events = cli.get_u64("updates", 16);
    bgp::ThreadPool pool(1);
    // Diff against the RAW feeds; update paths are reduced on merge.
    auto stream = data::simulate_session_failures(
        pipeline.ground_truth, pipeline.raw_dataset, dynamics, pool);
    std::ostringstream out;
    data::write_updates(out, stream);
    const std::string updates_path = cli.get_string("updates-out", "");
    if (!write_file(updates_path, out.str())) return 1;
    std::printf("wrote %zu events / %zu updates to %s\n",
                stream.events.size(), stream.updates.size(),
                updates_path.c_str());
  }
  return 0;
}

int cmd_info(const nb::Cli& cli) {
  if (cli.has("dataset")) {
    auto dataset = load_dataset(cli.get_string("dataset", ""));
    if (!dataset) return 1;
    auto stats = data::compute_diversity(*dataset);
    std::printf("feeds: %zu   observation ASes: %zu (multi-feed %zu)\n",
                dataset->points.size(), dataset->observation_ases().size(),
                dataset->multi_feed_ases());
    std::printf("records: %zu   unique paths: %zu   AS pairs: %zu\n",
                dataset->records.size(), stats.unique_paths, stats.as_pairs);
    std::printf("AS pairs with >1 distinct path: %s\n",
                nb::fmt_percent(stats.paths_per_pair.fraction_at_least(2))
                    .c_str());
    return 0;
  }
  if (cli.has("model")) {
    auto model = load_model(cli.get_string("model", ""));
    if (!model) return 1;
    auto stats = model->policy_stats();
    std::size_t multi = 0;
    for (auto& [asn, count] : model->router_counts())
      if (count > 1) ++multi;
    std::printf("ASes: %zu   quasi-routers: %zu (multi-router ASes: %zu)   "
                "sessions: %zu\n",
                model->num_ases(), model->num_routers(), multi,
                model->num_sessions());
    std::printf("policies: %zu filters, %zu rankings, %zu lp-overrides, "
                "%zu export-allows over %zu prefixes\n",
                stats.filters, stats.rankings, stats.lp_overrides,
                stats.export_allows, stats.prefixes_with_policy);
    return 0;
  }
  return usage();
}

int cmd_refine(const nb::Cli& cli) {
  auto dataset = load_dataset(cli.get_string("dataset", ""));
  const std::string out_path = cli.get_string("out", "");
  if (!dataset || out_path.empty()) return dataset ? usage() : 1;

  data::BgpDataset training = *dataset;
  if (!cli.get_bool("all")) {
    data::SplitConfig split_config;
    split_config.seed = cli.get_u64("split-seed", 4);
    split_config.training_fraction =
        cli.get_double("training-fraction", 2.0 / 3.0);
    training = data::split_by_points(*dataset, split_config).training;
  }
  if (cli.has("updates")) {
    std::ifstream in(cli.get_string("updates", ""));
    std::string error;
    auto stream = data::read_updates(in, &error);
    if (!stream) {
      std::fprintf(stderr, "rdtool: updates: %s\n", error.c_str());
      return 1;
    }
    const std::size_t before = training.records.size();
    training = stream->merge_into(training);
    std::printf("merged update stream: %zu -> %zu training records\n",
                before, training.records.size());
  }

  auto graph = topo::AsGraph::from_paths(dataset->all_paths());
  topo::Model model = topo::Model::one_router_per_as(graph);
  core::RefineConfig config;
  config.verbose = cli.get_bool("verbose");
  // 0 = hardware concurrency; the fitted model is identical for every
  // thread count (see refine.hpp), so this is purely a speed knob.
  config.threads = static_cast<unsigned>(cli.get_u64("threads", 1));
  auto result = core::refine_model(model, training, config);
  if (!write_file(out_path, topo::model_to_string(model))) return 1;
  if (cli.get_bool("json")) {
    // Single JSON object on stdout; the model still lands in --out.
    std::printf(
        "{\"tool\": \"refine\", \"success\": %s, \"iterations\": %zu, "
        "\"unmatched_paths\": %zu, \"routers\": %zu, "
        "\"messages_simulated\": %llu, \"threads\": %u, "
        "\"phase_seconds\": {\"simulate\": %.6f, \"heuristic\": %.6f, "
        "\"validate\": %.6f, \"total\": %.6f}}\n",
        result.success ? "true" : "false", result.iterations,
        result.unmatched_paths, model.num_routers(),
        static_cast<unsigned long long>(result.messages_simulated),
        result.threads_used, result.phase_seconds.simulate,
        result.phase_seconds.heuristic, result.phase_seconds.validate,
        result.phase_seconds.total);
  } else {
    std::printf("%s", core::render_refine_log(result).c_str());
    std::printf("fit took %.3fs (simulate %.3fs, heuristic %.3fs) on %u "
                "thread(s), %llu messages\n",
                result.phase_seconds.total, result.phase_seconds.simulate,
                result.phase_seconds.heuristic, result.threads_used,
                static_cast<unsigned long long>(result.messages_simulated));
    std::printf("wrote model (%zu quasi-routers) to %s\n",
                model.num_routers(), out_path.c_str());
  }
  return result.success ? 0 : 3;
}

int cmd_predict(const nb::Cli& cli) {
  auto dataset = load_dataset(cli.get_string("dataset", ""));
  auto model = load_model(cli.get_string("model", ""));
  if (!dataset || !model) return 1;

  data::BgpDataset target = *dataset;
  std::string title = "all records";
  if (cli.get_bool("validation-only")) {
    data::SplitConfig split_config;
    split_config.seed = cli.get_u64("split-seed", 4);
    split_config.training_fraction =
        cli.get_double("training-fraction", 2.0 / 3.0);
    target = data::split_by_points(*dataset, split_config).validation;
    title = "validation records (held-out feeds)";
  }
  core::EvalOptions options;
  auto eval = core::evaluate_predictions(*model, target, options);
  std::printf("%s", core::render_validation(title, eval.stats).c_str());
  return 0;
}

std::optional<std::pair<nb::Asn, nb::Asn>> parse_link(std::string_view text) {
  auto colon = text.find(':');
  if (colon == std::string_view::npos) return std::nullopt;
  auto a = nb::parse_u64(text.substr(0, colon));
  auto b = nb::parse_u64(text.substr(colon + 1));
  if (!a || !b) return std::nullopt;
  return std::make_pair(static_cast<nb::Asn>(*a), static_cast<nb::Asn>(*b));
}

int cmd_whatif(const nb::Cli& cli) {
  auto model = load_model(cli.get_string("model", ""));
  if (!model) return 1;
  auto link = parse_link(cli.get_string("remove-link", ""));
  if (!link) {
    std::fprintf(stderr, "rdtool: --remove-link A:B required\n");
    return usage();
  }
  core::WhatIfScenario scenario;
  scenario.remove_as_links.push_back(*link);
  std::vector<nb::Asn> origins = model->asns();
  const std::size_t limit = cli.get_u64("prefixes", 50);
  if (origins.size() > limit) origins.resize(limit);
  auto result = core::evaluate_whatif(*model, scenario, origins);
  std::printf("prefixes evaluated: %zu   (prefix, AS) pairs: %zu\n",
              result.prefixes_evaluated, result.pairs_evaluated);
  std::printf("changed: %zu   lost reachability: %zu   gained: %zu\n",
              result.pairs_changed, result.pairs_lost_reachability,
              result.pairs_gained_reachability);
  std::size_t shown = 0;
  for (const auto& change : result.changes) {
    if (++shown > cli.get_u64("show", 10)) break;
    std::printf("AS %u, prefix of AS %u:\n", change.observer, change.origin);
    for (const auto& path : change.before) {
      std::string text;
      for (nb::Asn hop : path) text += std::to_string(hop) + " ";
      std::printf("  before: %s\n", text.c_str());
    }
    for (const auto& path : change.after) {
      std::string text;
      for (nb::Asn hop : path) text += std::to_string(hop) + " ";
      std::printf("  after:  %s\n", text.c_str());
    }
  }
  return 0;
}

int cmd_explain(const nb::Cli& cli) {
  auto model = load_model(cli.get_string("model", ""));
  if (!model) return 1;
  const auto origin = static_cast<nb::Asn>(cli.get_u64("origin", 0));
  const auto observer = static_cast<nb::Asn>(cli.get_u64("as", 0));
  if (!model->has_as(origin) || !model->has_as(observer)) {
    std::fprintf(stderr, "rdtool: --origin and --as must name ASes in the "
                         "model\n");
    return 1;
  }
  bgp::Engine engine(*model);
  auto sim = engine.run(nb::Prefix::for_asn(origin), origin);
  for (topo::Model::Dense r : model->routers_of(observer))
    std::printf("%s", bgp::explain_selection(*model, sim, r).str(*model).c_str());
  return 0;
}

int cmd_lint(const nb::Cli& cli) {
  if (cli.get_bool("list-fixtures")) {
    for (std::string_view name : analysis::fixture_names())
      std::printf("%.*s -> %s\n", static_cast<int>(name.size()), name.data(),
                  analysis::fixture_expected_code(name));
    return 0;
  }

  std::optional<topo::Model> model;
  std::string what;
  analysis::ValidateOptions options;
  if (cli.has("fixture")) {
    const std::string name = cli.get_string("fixture", "");
    model = analysis::corrupted_fixture(name);
    if (!model) {
      std::fprintf(stderr, "rdtool: unknown fixture %s (see --list-fixtures)\n",
                   name.c_str());
      return 2;
    }
    what = "fixture " + name;
  } else if (cli.has("model")) {
    const std::string path = cli.get_string("model", "");
    model = load_model(path);
    if (!model) return 2;
    options.pairwise_sessions = cli.get_bool("fitted");
    options.agnostic = cli.get_bool("fitted");
    what = path;
  } else if (cli.get_bool("generated")) {
    core::PipelineConfig config = core::PipelineConfig::with(
        cli.get_double("scale", 0.2), cli.get_u64("seed", 1));
    core::Pipeline pipeline = core::make_pipeline(config);
    core::run_data_stages(pipeline);
    model = topo::Model::one_router_per_as(pipeline.graph);
    options.pairwise_sessions = true;  // trivially one router per AS
    options.agnostic = true;
    what = "one-router-per-AS model of generated topology (" +
           std::to_string(pipeline.graph.num_nodes()) + " ASes)";
  } else {
    return usage();
  }

  const analysis::Diagnostics diagnostics =
      analysis::validate_model(*model, options);
  if (cli.get_bool("json")) {
    std::printf("%s",
                analysis::diagnostics_to_json("lint", what, diagnostics).c_str());
  } else {
    std::printf("%s", analysis::render_diagnostics(diagnostics).c_str());
    std::printf("lint: %zu error(s), %zu warning(s) in %s\n",
                analysis::count(diagnostics, analysis::Severity::kError),
                analysis::count(diagnostics, analysis::Severity::kWarning),
                what.c_str());
  }
  return diagnostics.empty() ? 0 : 1;
}

int cmd_audit(const nb::Cli& cli) {
  if (cli.get_bool("list-fixtures")) {
    for (std::string_view name : analysis::audit_fixture_names())
      std::printf("%.*s -> %s\n", static_cast<int>(name.size()), name.data(),
                  analysis::audit_fixture_expected_code(name));
    return 0;
  }

  std::optional<topo::Model> model;
  analysis::AuditOptions options;
  std::string what;
  if (cli.has("fixture")) {
    const std::string name = cli.get_string("fixture", "");
    model = analysis::audit_fixture(name);
    if (!model) {
      std::fprintf(stderr, "rdtool: unknown fixture %s (see --list-fixtures)\n",
                   name.c_str());
      return 2;
    }
    what = "fixture " + name;
  } else if (cli.has("model")) {
    const std::string path = cli.get_string("model", "");
    model = load_model(path);
    if (!model) return 2;
    what = path;
  } else if (cli.get_bool("generated")) {
    core::PipelineConfig config = core::PipelineConfig::with(
        cli.get_double("scale", 0.2), cli.get_u64("seed", 1));
    core::Pipeline pipeline = core::make_pipeline(config);
    core::run_data_stages(pipeline);
    model = std::move(pipeline.ground_truth.model);
    options.engine = pipeline.ground_truth.config.engine_options();
    what = "ground-truth model of generated topology (" +
           std::to_string(model->num_ases()) + " ASes)";
  } else {
    return usage();
  }
  if (cli.has("origin"))
    options.origins.push_back(static_cast<nb::Asn>(cli.get_u64("origin", 0)));
  // 0 = hardware concurrency; per-prefix passes fan out, results are
  // thread-count invariant (see policy_audit.hpp).
  options.threads = static_cast<unsigned>(cli.get_u64("threads", 1));

  const auto t_start = std::chrono::steady_clock::now();
  const analysis::AuditResult result = analysis::audit_model(*model, options);
  const double audit_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t_start)
          .count();
  if (cli.get_bool("json")) {
    char extra[128];
    std::snprintf(extra, sizeof extra,
                  "\"seconds\": %.6f, \"threads\": %u, \"prefixes\": %zu",
                  audit_seconds, bgp::ThreadPool::resolve(options.threads),
                  result.prefixes.size());
    std::printf("%s",
                analysis::diagnostics_to_json("audit", what,
                                              result.diagnostics, extra)
                    .c_str());
  } else {
    std::printf("%s", core::render_audit(result).c_str());
    std::printf("%s", analysis::render_diagnostics(result.diagnostics).c_str());
    std::printf("audit: %zu error(s), %zu warning(s) in %s\n",
                analysis::count(result.diagnostics, analysis::Severity::kError),
                analysis::count(result.diagnostics,
                                analysis::Severity::kWarning),
                what.c_str());
  }
  return result.diagnostics.empty() ? 0 : 1;
}

int cmd_selftest(const nb::Cli& cli) {
  const std::string dir = cli.get_string("dir", "/tmp");
  const std::string dump = dir + "/rdtool_selftest.dump";
  const std::string model_path = dir + "/rdtool_selftest.model";

  // generate
  {
    const char* argv[] = {"rdtool", "--out",   dump.c_str(), "--scale",
                          "0.12",   "--seed",  "5"};
    nb::Cli sub(7, const_cast<char**>(argv));
    if (cmd_generate(sub) != 0) return 1;
  }
  // refine
  {
    const char* argv[] = {"rdtool", "--dataset", dump.c_str(), "--out",
                          model_path.c_str()};
    nb::Cli sub(5, const_cast<char**>(argv));
    if (cmd_refine(sub) != 0) return 1;
  }
  // predict on held-out feeds
  {
    const char* argv[] = {"rdtool", "--dataset", dump.c_str(), "--model",
                          model_path.c_str(), "--validation-only"};
    nb::Cli sub(6, const_cast<char**>(argv));
    if (cmd_predict(sub) != 0) return 1;
  }
  // info on both artifacts
  {
    const char* argv[] = {"rdtool", "--dataset", dump.c_str()};
    nb::Cli sub(3, const_cast<char**>(argv));
    if (cmd_info(sub) != 0) return 1;
  }
  {
    const char* argv[] = {"rdtool", "--model", model_path.c_str()};
    nb::Cli sub(3, const_cast<char**>(argv));
    if (cmd_info(sub) != 0) return 1;
  }
  // lint the fitted model, including the refinement-closure checks; once
  // more in JSON to keep the machine-readable path exercised.
  {
    const char* argv[] = {"rdtool", "--model", model_path.c_str(),
                          "--fitted"};
    nb::Cli sub(4, const_cast<char**>(argv));
    if (cmd_lint(sub) != 0) return 1;
  }
  {
    const char* argv[] = {"rdtool", "--model", model_path.c_str(),
                          "--fitted", "--json"};
    nb::Cli sub(5, const_cast<char**>(argv));
    if (cmd_lint(sub) != 0) return 1;
  }
  // static audit of the fitted model.  Advisory findings (dead policies,
  // truncation) exit 1 and are fine here; only usage/IO failures (exit >= 2)
  // fail the selftest.  test_audit separately asserts fitted models carry no
  // S500 dispute wheel.
  {
    const char* argv[] = {"rdtool", "--model", model_path.c_str()};
    nb::Cli sub(3, const_cast<char**>(argv));
    if (cmd_audit(sub) >= 2) return 1;
  }
  // what-if on the fitted model: remove the first link we can find.
  {
    auto model = load_model(model_path);
    if (!model) return 1;
    nb::Asn a = nb::kInvalidAsn, b = nb::kInvalidAsn;
    for (topo::Model::Dense r = 0; r < model->num_routers() && a == nb::kInvalidAsn; ++r) {
      if (!model->peers(r).empty()) {
        a = model->router_id(r).asn();
        b = model->router_id(model->peers(r).front()).asn();
      }
    }
    std::string link = std::to_string(a) + ":" + std::to_string(b);
    const char* argv[] = {"rdtool", "--model", model_path.c_str(),
                          "--remove-link", link.c_str(), "--prefixes", "10"};
    nb::Cli sub(7, const_cast<char**>(argv));
    if (cmd_whatif(sub) != 0) return 1;
  }
  std::printf("selftest OK\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  nb::Cli cli(argc - 1, argv + 1);
  if (command == "generate") return cmd_generate(cli);
  if (command == "info") return cmd_info(cli);
  if (command == "refine") return cmd_refine(cli);
  if (command == "predict") return cmd_predict(cli);
  if (command == "whatif") return cmd_whatif(cli);
  if (command == "explain") return cmd_explain(cli);
  if (command == "lint") return cmd_lint(cli);
  if (command == "audit") return cmd_audit(cli);
  if (command == "selftest") return cmd_selftest(cli);
  if (command == "help" || command == "--help" || command == "-h") {
    print_help(stdout);
    return 0;
  }
  return usage();
}
